"""Tests for architected register index compaction (§III-A4)."""

import pytest

from repro.compiler.acquire_release import inject_primitives
from repro.compiler.compaction import (
    CompactionError,
    compact_register_indices,
    verify_compact,
)
from repro.compiler.regions import find_acquire_regions
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode
from repro.liveness.liveness import analyze_liveness


def stranded_value_kernel():
    """A value lives in an extended-set index (R9) across a release: the
    paper's {2, 4, 5, 9} example shape with |Bs| = 6."""
    b = KernelBuilder(regs_per_thread=10, threads_per_cta=64)
    b.ldc(2).ldc(4).ldc(5)
    for r in (0, 1, 3, 6, 7, 8, 9):
        b.ldc(r)
    # High-pressure stretch touching everything (region: all 10 live).
    for i in range(6):
        b.alu(6 + i % 4, (i + 1) % 10, (i + 2) % 10)
    # Kill the high registers except R9 (reduce 6,7,8 into R0).
    b.alu(0, 0, 6)
    b.alu(0, 0, 7)
    b.alu(0, 0, 8)
    b.alu(0, 0, 1)
    b.alu(0, 0, 3)
    # Low-pressure tail: R9 used here, after pressure has dropped.
    b.alu(2, 2, 9)
    b.alu(4, 4, 2)
    b.alu(5, 5, 4)
    b.store(0, 5)
    b.exit()
    return b.build()


class TestCompaction:
    def test_stranded_value_moved_into_base_set(self):
        k = stranded_value_kernel()
        injected = inject_primitives(k, find_acquire_regions(k, 6))
        compacted = compact_register_indices(injected.kernel, 6)
        verify_compact(compacted, 6)  # would raise on failure

    def test_mov_inserted_with_provenance(self):
        k = stranded_value_kernel()
        injected = inject_primitives(k, find_acquire_regions(k, 6))
        compacted = compact_register_indices(injected.kernel, 6)
        movs = [
            i for i in compacted
            if i.opcode is Opcode.MOV and i.comment and "compaction" in i.comment
        ]
        assert movs, "expected at least one compaction MOV"
        for mov in movs:
            assert mov.dsts[0] < 6       # destination inside the base set
            assert mov.srcs[0] >= 6      # source from the extended set

    def test_uses_renamed_after_release(self):
        k = stranded_value_kernel()
        injected = inject_primitives(k, find_acquire_regions(k, 6))
        compacted = compact_register_indices(injected.kernel, 6)
        release_pc = next(
            pc for pc, i in enumerate(compacted) if i.opcode is Opcode.RELEASE
        )
        for pc in range(release_pc + 1, len(compacted)):
            for reg in compacted[pc].srcs:
                info = analyze_liveness(compacted)
                if reg >= 6:
                    # Any extended-index source after the release must be
                    # inside a (re-)acquired region; this kernel has none.
                    pytest.fail(f"pc {pc} still reads extended R{reg}")

    def test_already_compact_is_identity(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(8):
            b.ldc(r)
        b.acquire()
        for i in range(4):
            b.alu(i, (i + 1) % 8, (i + 2) % 8)
        for r in range(4, 8):
            b.alu(0, 0, r)   # extended values die before the release
        b.release()
        b.alu(1, 0, 2)
        b.store(0, 1)
        b.exit()
        k = b.build()
        compacted = compact_register_indices(k, 4)
        assert compacted.instructions == k.instructions

    def test_impossible_compaction_raises(self):
        """More live extended values at the release than free base slots."""
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(8):
            b.ldc(r)
        b.acquire()
        b.alu(7, 6, 5)
        b.release()
        # Everything still live afterwards: 8 live > |Bs| = 4.
        for r in range(8):
            b.alu(0, 0, r)
        b.store(0, 0)
        b.exit()
        with pytest.raises(CompactionError, match="free base slots"):
            compact_register_indices(b.build(), 4)

    def test_verify_compact_detects_violation(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(8):
            b.ldc(r)
        b.release()
        for r in range(8):
            b.alu(0, 0, r)
        b.store(0, 0)
        b.exit()
        with pytest.raises(CompactionError, match="live extended"):
            verify_compact(b.build(), 4)

    def test_bad_base_size_rejected(self):
        k = stranded_value_kernel()
        with pytest.raises(ValueError):
            compact_register_indices(k, 0)

    def test_semantic_equivalence_via_def_use_chains(self):
        """After compaction, the value flowing into the final store is
        computed from the same chain (checked structurally: same opcode
        sequence modulo MOVs and renaming)."""
        k = stranded_value_kernel()
        injected = inject_primitives(k, find_acquire_regions(k, 6))
        compacted = compact_register_indices(injected.kernel, 6)
        original_ops = [i.opcode for i in injected.kernel]
        compacted_ops = [i.opcode for i in compacted if i.opcode is not Opcode.MOV
                         or not (i.comment and "compaction" in i.comment)]
        assert compacted_ops == original_ops


class TestUnsoundRenameDetection:
    def test_use_reachable_from_two_defs_rejected(self):
        """A use of an extended register reachable both from the value
        being compacted and from a different definition (via a branch
        around the release) cannot be renamed; the pass must refuse
        rather than miscompile."""
        b = KernelBuilder(regs_per_thread=10, threads_per_cta=64)
        for r in range(10):
            b.ldc(r)
        b.acquire()
        b.alu(9, 8, 7)                 # def A of R9 inside the region
        # Kill the extended values except R9 so the region can end.
        for r in range(6, 9):
            b.alu(0, 0, r)
        b.setp(1, 0, 2)
        b.branch("skip", 1, taken_probability=0.5)
        b.release()                    # release on the fall-through path
        b.jump("use")
        b.label("skip").alu(9, 0, 1)   # def B of R9, bypassing the release
        b.label("use").alu(2, 2, 9)    # use reachable from A and B
        b.store(0, 2)
        b.exit()
        kernel = b.build()
        with pytest.raises(CompactionError, match="unsound|free base"):
            compact_register_indices(kernel, 6)


def _shadow_digests(kernel):
    """Execute a straight-line kernel on the shadow executor and return
    its (streams, memory) digests — the oracle's equivalence signal."""
    from repro.check.shadow import ShadowState
    from repro.sim.rand import DeterministicRng
    from repro.sim.warp import Warp

    shadow = ShadowState()
    warp = Warp(0, 0, kernel, DeterministicRng(1))
    for inst in kernel:
        shadow.observe(warp, inst)
    return shadow.warp_streams(), shadow.memory_digest()


class TestClobberAwareSlotChoice:
    """Regression for the MRI-Q miscompile the differential oracle
    caught: a base slot that is free at the release point but redefined
    before a renamed use must not receive a moved value."""

    def test_clobbered_first_slot_is_skipped(self):
        b = KernelBuilder(regs_per_thread=6, threads_per_cta=64)
        b.ldc(0)
        b.acquire()
        b.ldc(4)
        b.release()
        b.alu(1, 0, 0)   # redefines R1 — the lowest free slot
        b.alu(3, 4, 1)   # ... before the renamed use of R4
        b.store(0, 3)
        b.exit()
        k = b.build()
        compacted = compact_register_indices(k, 4)
        verify_compact(compacted, 4)
        (mov,) = [
            i for i in compacted
            if i.opcode is Opcode.MOV and "compaction" in (i.comment or "")
        ]
        assert mov.srcs == (4,)
        assert mov.dsts[0] == 2  # NOT slot 1, which i+1 clobbers
        assert _shadow_digests(compacted) == _shadow_digests(k)

    def test_augmenting_path_swap_finds_the_only_valid_pairing(self):
        """R4 can live in slot 2 or 3; R5 only in slot 2.  First-fit
        hands 2 to R4 and dies; the matching must swap."""
        b = KernelBuilder(regs_per_thread=6, threads_per_cta=64)
        b.ldc(0)
        b.ldc(1)
        b.acquire()
        b.ldc(4)
        b.ldc(5)
        b.release()
        b.alu(0, 4, 0)   # R4's last use precedes every slot redefinition
        b.alu(3, 0, 1)   # redefines slot 3
        b.alu(1, 5, 3)   # R5 used after — slot 3 is unsafe for R5
        b.store(0, 1)
        b.exit()
        k = b.build()
        compacted = compact_register_indices(k, 4)
        verify_compact(compacted, 4)
        pairing = {
            i.srcs[0]: i.dsts[0]
            for i in compacted
            if i.opcode is Opcode.MOV and "compaction" in (i.comment or "")
        }
        assert pairing == {4: 3, 5: 2}
        assert _shadow_digests(compacted) == _shadow_digests(k)

    def test_no_safe_slot_raises_instead_of_miscompiling(self):
        b = KernelBuilder(regs_per_thread=6, threads_per_cta=64)
        b.ldc(0)
        b.ldc(1)
        b.ldc(2)
        b.acquire()
        b.ldc(4)
        b.release()
        b.alu(3, 0, 1)   # the only free slot, redefined ...
        b.alu(0, 4, 3)   # ... before R4's renamed use
        b.store(0, 2)
        b.exit()
        with pytest.raises(CompactionError, match="no conflict-free"):
            compact_register_indices(b.build(), 4)
