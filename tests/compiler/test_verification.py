"""Tests for the static RegMutex safety verifier."""

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF
from repro.compiler.verification import (
    RegMutexSafetyError,
    assert_regmutex_safe,
    verify_regmutex_safety,
)
from repro.compiler.pipeline import regmutex_compile
from repro.isa.builder import KernelBuilder
from repro.workloads.suite import APPLICATIONS, build_app_kernel


def _safe_kernel():
    b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
    for r in range(4):
        b.ldc(r)
    b.acquire()
    for r in range(4, 8):
        b.ldc(r)
    for r in range(4, 8):
        b.alu(0, 0, r)
    b.release()
    b.store(0, 0)
    b.exit()
    return b.build()


class TestVerifier:
    def test_safe_kernel_passes(self):
        result = verify_regmutex_safety(_safe_kernel(), base_set_size=4)
        assert result.ok
        assert not result.violations

    def test_access_before_acquire_flagged(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.ldc(5)          # extended index, no acquire yet
        b.acquire()
        b.alu(0, 5)
        b.release()
        b.exit()
        result = verify_regmutex_safety(b.build(), base_set_size=4)
        assert not result.ok
        assert "pc 0" in result.violations[0]

    def test_access_after_release_flagged(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.acquire()
        b.ldc(5)
        b.release()
        b.alu(0, 5)       # stale extended access
        b.exit()
        result = verify_regmutex_safety(b.build(), base_set_size=4)
        assert any("pc 3" in v for v in result.violations)

    def test_branch_skipping_acquire_flagged(self):
        """A path that jumps around the acquire into the region."""
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.ldc(0)
        b.branch("inside", 0, taken_probability=0.5)
        b.acquire()
        b.label("inside").ldc(6)    # reachable both with and without
        b.release()
        b.exit()
        result = verify_regmutex_safety(b.build(), base_set_size=4)
        assert not result.ok

    def test_reacquire_warns_not_fails(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.acquire()
        b.acquire()      # nested: architectural no-op
        b.ldc(5)
        b.release()
        b.release()      # nested: no-op
        b.exit()
        result = verify_regmutex_safety(b.build(), base_set_size=4)
        assert result.ok
        assert len(result.warnings) == 2

    def test_assert_raises(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.ldc(7)
        b.exit()
        with pytest.raises(RegMutexSafetyError, match="R7"):
            assert_regmutex_safe(b.build(), base_set_size=4)

    def test_loop_region_safe(self):
        """Acquire before a loop, release after: holding state must be
        propagated around the back edge."""
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(4):
            b.ldc(r)
        b.acquire()
        b.label("loop")
        b.ldc(6)
        b.alu(0, 0, 6)
        b.setp(1, 0, 2)
        b.branch("loop", 1, trip_count=3)
        b.release()
        b.store(0, 0)
        b.exit()
        assert verify_regmutex_safety(b.build(), base_set_size=4).ok


class TestCompiledKernelsAreSafe:
    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_every_compiled_app_verifies(self, app):
        """The full pipeline's output must pass the static checker for
        all 16 applications — the end-to-end compiler correctness gate."""
        spec = APPLICATIONS[app]
        config = GTX480 if spec.group == "occupancy-limited" else GTX480_HALF_RF
        compiled = regmutex_compile(
            build_app_kernel(spec), config, forced_es=spec.expected_es
        )
        if compiled.metadata.uses_regmutex:
            assert_regmutex_safe(compiled, compiled.metadata.base_set_size)


class TestUnreachableCode:
    def test_unreachable_extended_access_warns_not_fails(self):
        """Dead code touching the extended set cannot corrupt runtime
        state, so it is a warning rather than a violation — but it must
        not pass silently, since the hold-state contract was never
        evaluated there."""
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(4):
            b.ldc(r)
        b.acquire()
        b.alu(4, 0, 1)
        b.release()
        b.store(0, 0)
        b.jump("end")
        b.alu(5, 0, 1)  # unreachable: touches extended R5
        b.label("end")
        b.exit()
        result = verify_regmutex_safety(b.build(), base_set_size=4)
        assert result.ok
        assert any(
            "unreachable" in w and "R5" in w for w in result.warnings
        )

    def test_unreachable_base_access_stays_silent(self):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.ldc(0)
        b.jump("end")
        b.alu(1, 0, 0)  # unreachable but base-set only: fine
        b.label("end")
        b.exit()
        result = verify_regmutex_safety(b.build(), base_set_size=4)
        assert result.ok
        assert not result.warnings
