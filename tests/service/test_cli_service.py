"""CLI surface of the service: ``repro list --json``, spec parsing for
``repro submit``, and a full submit/status/trace round trip against a
daemon subprocess (dedup hit on resubmission, SIGTERM exit 0)."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.service.protocol import job_to_wire
from repro.workloads.suite import APPLICATIONS

from tests.service.conftest import make_job, start_daemon, stop_daemon


class TestListJson:
    def test_listing_is_machine_readable(self, capsys):
        assert cli.main(["list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert set(listing) >= {"experiments", "figures", "techniques",
                                "apps"}
        assert "fig7" in listing["figures"]
        assert "baseline" in listing["techniques"]
        apps = {a["name"]: a for a in listing["apps"]}
        assert set(apps) == set(APPLICATIONS)
        assert apps["Gaussian"]["regs"] > 0

    def test_plain_listing_still_prose(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
        assert "fig7" in out


class TestSubmitSpecParsing:
    def test_unknown_spec_is_rejected(self, tmp_path):
        args = cli._build_parser().parse_args(["submit", "figNaN"])
        with pytest.raises(ValueError, match="figNaN"):
            cli._submission_jobs(args)

    def test_jobs_file_round_trips(self, tmp_path):
        job = make_job()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"jobs": [job_to_wire(job)]}))
        args = cli._build_parser().parse_args(["submit", str(spec_path)])
        jobs, experiment, apps = cli._submission_jobs(args)
        assert jobs == [job] and experiment is None

    def test_figure_name_resolves_to_experiment(self):
        args = cli._build_parser().parse_args(
            ["submit", "fig7", "--apps", "Gaussian"]
        )
        jobs, experiment, apps = cli._submission_jobs(args)
        assert jobs is None
        assert experiment == "fig7" and apps == ["Gaussian"]


@pytest.mark.faults
class TestSubmitStatusRoundTrip:
    def test_submit_twice_dedups_then_status_and_trace(
        self, tmp_path, capsys
    ):
        job = make_job()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"jobs": [job_to_wire(job)]}))
        daemon, sock = start_daemon(tmp_path)
        try:
            assert cli.main(["submit", str(spec_path),
                             "--socket", sock]) == 0
            first = capsys.readouterr().out
            assert "1 job(s) finished, 0 dedup hit(s)" in first
            assert "(pool" in first

            # Second submission: answered from the run store, zero
            # simulation work.
            assert cli.main(["submit", str(spec_path),
                             "--socket", sock]) == 0
            second = capsys.readouterr().out
            assert "1 dedup hit(s)" in second
            assert "dedup=store" in second

            trace_path = tmp_path / "jobs.trace.json"
            assert cli.main(["status", "--socket", sock,
                             "--trace", str(trace_path)]) == 0
            status_out = capsys.readouterr().out
            assert "simulations" in status_out
            trace = json.loads(trace_path.read_text())
            assert trace["traceEvents"]
        finally:
            stop_daemon(daemon)   # SIGTERM drains and exits 0
