"""Shared fixtures for the service-daemon tests.

Two ways to get a daemon:

* in-process — ``SimulationService`` inside ``asyncio.run`` (fast; the
  dedup/timeout/backpressure unit tests).  Blocking ``ServiceClient``
  calls from these tests MUST go through ``asyncio.to_thread`` — the
  daemon shares the test's event loop, so a blocking socket read on
  the loop thread deadlocks both sides.
* subprocess — ``python -m repro serve`` via :func:`start_daemon`
  (the SIGKILL-restart and CLI round-trip tests, where the daemon must
  be killable independently of the test process).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

from repro.arch.config import fermi_like
from repro.harness.spec import JobSpec, TechniqueSpec

# Same shape as the orchestrator tests: small enough that Gaussian
# simulates in about a second, big enough for multi-SM + memory system.
SVC_CFG = fermi_like(
    name="svc-test",
    num_sms=2,
    max_warps_per_sm=16,
    max_ctas_per_sm=4,
    max_threads_per_sm=512,
    registers_per_sm=8192,
    dram_latency=60,
    l1_hit_latency=8,
)

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def make_job(app: str = "Gaussian", technique: TechniqueSpec | None = None,
             config=SVC_CFG) -> JobSpec:
    return JobSpec(app=app, config=config,
                   technique=technique or TechniqueSpec("baseline"))


def sleeper_job(delay_seconds: float = 1.0) -> JobSpec:
    """A job whose worker sleeps before simulating — occupies a pool
    slot deterministically without burning CPU."""
    return make_job(technique=TechniqueSpec.of(
        "faulty-worker", mode="worker-sleep", delay_seconds=delay_seconds
    ))


def start_daemon(tmp_path, *, workers: int = 1, serve_args: tuple = (),
                 socket_name: str = "d.sock") -> tuple:
    """Launch ``python -m repro serve`` as a subprocess.

    Returns ``(proc, socket_path)`` once the daemon is accepting
    connections.  The caller owns shutdown (SIGTERM for the graceful
    path, SIGKILL for the crash tests).
    """
    sock_path = str(tmp_path / socket_name)
    cache_path = str(tmp_path / "cache.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--cache", cache_path, "--workers", str(workers),
            "serve", "--socket", sock_path, *serve_args,
        ],
        cwd=str(tmp_path),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        # Own process group, so the crash tests can SIGKILL the daemon
        # *and* its pool workers as one unit (see kill_daemon).
        start_new_session=True,
    )
    wait_for_socket(proc, sock_path)
    return proc, sock_path


def wait_for_socket(proc, sock_path: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode(errors="replace")
            raise AssertionError(
                f"daemon exited early ({proc.returncode}):\n{out}"
            )
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            probe.connect(sock_path)
            probe.close()
            return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"daemon never listened on {sock_path}")


def kill_daemon(proc) -> None:
    """SIGKILL the daemon's whole process group — daemon AND pool
    workers, like a machine crash.

    ``proc.kill()`` alone would orphan the pool workers: a worker
    mid-job keeps simulating, finishes, and removes its checkpoint as
    spent — so whether a restarted daemon finds anything to resume
    from would depend on how fast the orphan ran (a race the native
    issue engine loses deterministically)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait()
    if proc.stdout is not None:
        proc.stdout.close()


def stop_daemon(proc, expect_clean: bool = True, timeout: float = 30.0) -> int:
    """SIGTERM the daemon (graceful drain) and reap it."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise AssertionError("daemon ignored SIGTERM")
    finally:
        if proc.stdout is not None:
            proc.stdout.close()
    if expect_clean:
        assert proc.returncode == 0, f"SIGTERM exit was {proc.returncode}"
    return proc.returncode
