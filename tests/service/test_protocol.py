"""Wire-protocol unit tests: framing, versioning, spec marshalling,
and the typed-error round trip (no daemon involved)."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    ServiceProtocolError,
    ServiceQueueFullError,
    ServiceSpecError,
    ServiceUnavailableError,
    ServiceVersionError,
)
from repro.harness.spec import TechniqueSpec
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
    job_from_wire,
    job_to_wire,
    raise_wire_error,
)

from tests.service.conftest import make_job


class TestFraming:
    def test_encode_stamps_version_and_newline(self):
        raw = encode_frame({"op": "ping"})
        assert raw.endswith(b"\n")
        frame = json.loads(raw)
        assert frame["v"] == PROTOCOL_VERSION
        assert frame["op"] == "ping"

    def test_round_trip(self):
        frame = decode_frame(encode_frame({"op": "status", "n": 3}).rstrip())
        assert frame["op"] == "status" and frame["n"] == 3

    def test_non_json_is_protocol_error(self):
        with pytest.raises(ServiceProtocolError):
            decode_frame(b"not json at all")

    def test_non_object_is_protocol_error(self):
        with pytest.raises(ServiceProtocolError):
            decode_frame(b"[1, 2, 3]")

    def test_oversized_frame_is_protocol_error(self):
        blob = b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}'
        with pytest.raises(ServiceProtocolError, match="frame"):
            decode_frame(blob)

    def test_version_skew_is_typed(self):
        skewed = json.dumps({"v": PROTOCOL_VERSION + 99, "op": "ping"})
        with pytest.raises(ServiceVersionError):
            decode_frame(skewed.encode())


class TestJobMarshalling:
    def test_job_round_trips_to_equal_spec(self):
        job = make_job()
        assert job_from_wire(job_to_wire(job)) == job

    def test_technique_params_survive(self):
        job = make_job(technique=TechniqueSpec.of(
            "regmutex", extra_slots=4, mutex_timer=24
        ))
        back = job_from_wire(job_to_wire(job))
        assert back == job
        assert back.technique.params == job.technique.params

    def test_unknown_app_is_spec_error(self):
        wire = job_to_wire(make_job())
        wire["app"] = "NoSuchApp"
        with pytest.raises(ServiceSpecError, match="NoSuchApp"):
            job_from_wire(wire)

    def test_bad_config_field_is_spec_error(self):
        wire = job_to_wire(make_job())
        wire["config"]["no_such_field"] = 1
        with pytest.raises(ServiceSpecError):
            job_from_wire(wire)


class TestErrorRoundTrip:
    @pytest.mark.parametrize("exc", [
        ServiceQueueFullError("queue is full"),
        ServiceSpecError("bad spec"),
        ServiceUnavailableError("draining"),
        ServiceVersionError("skew"),
        ServiceProtocolError("garbage"),
    ])
    def test_typed_error_survives_the_wire(self, exc):
        frame = decode_frame(encode_frame(error_frame(exc)).rstrip())
        assert frame["ok"] is False
        with pytest.raises(type(exc)):
            raise_wire_error(frame)
