"""Daemon crash-safety: SIGKILL the whole daemon mid-job, restart it on
the same cache/checkpoint directories, and the resubmitted job must
resume from the surviving checkpoint and finish bit-identical to an
uninterrupted run.  Also the graceful path: SIGTERM exits 0."""

from __future__ import annotations

import time

import pytest

from repro.harness.orchestrator import Orchestrator
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.service import ServiceClient, record_from_wire

from tests.service.conftest import (
    kill_daemon,
    make_job,
    start_daemon,
    stop_daemon,
)

pytestmark = pytest.mark.faults


def _wait_for_checkpoint(ckpt_dir, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        # Only a completed (os.replace'd) checkpoint counts — matching
        # the in-flight "*.ckpt.json.tmp.<pid>" file would let the kill
        # land before any resumable snapshot exists.
        if ckpt_dir.exists() and any(
            p.is_file() and p.name.endswith(".ckpt.json")
            for p in ckpt_dir.rglob("*")
        ):
            return
        time.sleep(0.02)
    raise AssertionError(f"no checkpoint ever appeared under {ckpt_dir}")


class TestDaemonRestart:
    def test_sigkilled_daemon_resumes_bit_identically(self, tmp_path):
        job = make_job()

        # The uninterrupted reference, on the daemon's exact simulation
        # parameters (seed 2018, default CTA target) but its own cache.
        ref_runner = ExperimentRunner(
            target_ctas_per_sm=24, seed=2018,
            cache_path=str(tmp_path / "ref-cache.json"),
        )
        ref = Orchestrator(ref_runner, workers=1).run_jobs([job])[job]
        assert isinstance(ref, RunRecord)

        ckpt = tmp_path / "ckpts"
        serve_args = (
            "--checkpoint-dir", str(ckpt),
            "--checkpoint-interval", "4000",
            "--flush-interval", "60",       # no periodic flush window
            "--seed", "2018",
        )

        daemon, sock = start_daemon(tmp_path, serve_args=serve_args)
        try:
            with ServiceClient(socket_path=sock) as client:
                response = client.submit(jobs=[job], follow=False)
            assert not response.final     # in flight, not a cache answer
            # Let the job write at least one checkpoint, then murder
            # the daemon — whole process group, workers included, so
            # the job is genuinely interrupted.  No drain, no flush.
            _wait_for_checkpoint(ckpt)
        finally:
            kill_daemon(daemon)

        daemon2, sock2 = start_daemon(tmp_path, serve_args=serve_args)
        try:
            with ServiceClient(socket_path=sock2, io_timeout=300.0) as client:
                result = client.submit(jobs=[job], follow=True)
            assert result.ok
            final = next(iter(result.final.values()))
            assert final["status"] == "done"
            # Resumed from the dead daemon's checkpoint — not rerun
            # from cycle 0, not a run-store hit.
            assert final.get("dedup") is None
            assert final.get("resumed_from_cycle") is not None
            assert final["resumed_from_cycle"] > 0
            assert record_from_wire(final["record"]) == ref
        finally:
            # Graceful shutdown: SIGTERM drains and exits 0.
            stop_daemon(daemon2)
