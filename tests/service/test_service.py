"""SimulationService behaviour: the three dedup layers, backpressure,
timeout propagation, observe-bus wiring, and concurrent socket clients.

All daemons here are in-process (``asyncio.run``); blocking clients run
in worker threads via ``asyncio.to_thread`` so the daemon's event loop
stays free to answer them.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import pytest

from repro.errors import (
    ServiceQueueFullError,
    ServiceSpecError,
    ServiceUnavailableError,
)
from repro.harness.runner import RunRecord
from repro.observe import JOB_DONE, JOB_QUEUED, JOB_RUNNING, job_trace_events
from repro.service import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    encode_frame,
    record_from_wire,
)
from repro.service.daemon import DONE, FAILED

from tests.service.conftest import make_job, sleeper_job


def svc_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        socket_path=str(tmp_path / "s.sock"),
        cache_path=str(tmp_path / "cache.json"),
        workers=1,
        seed=7,
        target_ctas_per_sm=2,
        retry_backoff=0.01,
        flush_interval=0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def drive(config: ServiceConfig, body, servers: bool = False):
    """Run ``body(service)`` against a started service, then close it."""
    async def main():
        service = SimulationService(config)
        await service.start()
        if servers:
            await service.start_servers()
        try:
            return await body(service)
        finally:
            await service.aclose()
    return asyncio.run(main())


class TestDedupLayers:
    def test_batch_then_store_dedup_reuses_one_simulation(self, tmp_path):
        job = make_job()

        async def body(service):
            # Batch layer: duplicate jobs in one submission collapse.
            results = service.submit([job, job])
            assert len(results) == 1
            state, dedup = results[0]
            assert dedup is None          # fresh computation
            await state.task
            assert isinstance(state.record, RunRecord)

            # Store layer: a post-completion resubmit is a pure cache
            # answer — zero new simulation work.
            (again, dedup2), = service.submit([job])
            assert dedup2 == "store"
            assert again.status == DONE
            assert again.record == state.record      # bit-identical
            assert service.stats["simulations"] == 1
            assert service.stats["dedup_batch"] == 1
            assert service.stats["dedup_store"] == 1
            return state.record

        record = drive(svc_config(tmp_path), body)
        assert record.cycles > 0

    def test_inflight_singleflight_shares_the_state(self, tmp_path):
        job = sleeper_job(0.5)

        async def body(service):
            (first, d1), = service.submit([job])
            (second, d2), = service.submit([job])
            assert second is first        # literally the same computation
            assert d1 is None and d2 == "inflight"
            assert first.attach_count == 1   # one later submitter attached
            await first.task
            assert isinstance(first.record, RunRecord)
            assert service.stats["simulations"] == 1
            assert service.stats["dedup_inflight"] == 1

        drive(svc_config(tmp_path), body)


class TestBackpressureAndDrain:
    def test_queue_full_is_all_or_nothing(self, tmp_path):
        async def body(service):
            occupier = sleeper_job(0.6)
            (running, _), = service.submit([occupier])
            # A new computation would exceed max_queue=1: typed, and
            # nothing from the rejected batch is enqueued.
            with pytest.raises(ServiceQueueFullError, match="queue full"):
                service.submit([make_job()])
            # Attaching to in-flight work adds no computation, so it
            # passes the same gate.
            (attached, dedup), = service.submit([occupier])
            assert attached is running and dedup == "inflight"
            await running.task
            assert service.stats["submitted"] == 2

        drive(svc_config(tmp_path, max_queue=1), body)

    def test_draining_service_rejects_submissions(self, tmp_path):
        async def body(service):
            service.begin_drain()
            with pytest.raises(ServiceUnavailableError, match="draining"):
                service.submit([make_job()])

        drive(svc_config(tmp_path), body)

    def test_nonpositive_submission_timeout_rejected(self, tmp_path):
        async def body(service):
            with pytest.raises(ServiceSpecError, match="timeout"):
                service.submit([make_job()], timeout=0.0)

        drive(svc_config(tmp_path), body)


class TestTimeoutPropagation:
    def test_submission_timeout_overrides_daemon_default(self, tmp_path):
        """A per-submission timeout must reach the worker wait even when
        the daemon's own default is far larger, fail typed, and leave
        the recycled pool healthy for the next job."""
        async def body(service):
            (hung, _), = service.submit([sleeper_job(8.0)], timeout=0.4)
            await hung.task
            assert hung.status == FAILED
            assert hung.failure.kind == "timeout"
            assert hung.timing.failed and hung.timing.failure_kind == "timeout"
            assert service.stats["timeouts"] == 1
            assert service.stats["pool_restarts"] >= 1

            (ok, _), = service.submit([make_job()])
            await ok.task
            assert isinstance(ok.record, RunRecord)

        drive(svc_config(tmp_path, job_timeout=60.0), body)


class TestObserveWiring:
    def test_job_lifecycle_lands_on_the_bus(self, tmp_path):
        async def body(service):
            (state, _), = service.submit([make_job()])
            await state.task
            kinds = [e.kind for e in service.log.events]
            assert kinds == [JOB_QUEUED, JOB_RUNNING, JOB_DONE]
            done = service.log.of_kind(JOB_DONE)[0]
            assert done.value == state.job_id
            assert "[pool]" in done.detail

            trace = job_trace_events(service.log)
            phases = [t["ph"] for t in trace]
            assert phases.count("B") == phases.count("E") == 1
            assert any(t["ph"] == "i" for t in trace)   # queued instant

        drive(svc_config(tmp_path), body)


class TestConcurrentClients:
    def test_two_clients_one_simulation_identical_records(self, tmp_path):
        """The acceptance probe: two clients submit identical and
        overlapping specs concurrently; exactly one simulation runs per
        unique job and both clients get the full (identical) records."""
        jobs = [sleeper_job(1.5), make_job()]

        async def body(service):
            sock = service.config.socket_path

            def submit(delay: float):
                time.sleep(delay)
                with ServiceClient(socket_path=sock, io_timeout=120.0) as c:
                    return c.submit(jobs=jobs)

            # workers=1: the sleeper occupies the only pool slot, so
            # the second client is guaranteed to arrive mid-flight.
            first, second = await asyncio.gather(
                asyncio.to_thread(submit, 0.0),
                asyncio.to_thread(submit, 0.4),
            )
            assert first.ok and second.ok
            assert service.stats["simulations"] == len(jobs)
            assert service.stats["dedup_inflight"] == len(jobs)
            assert all(e.get("dedup") == "inflight" for e in second.jobs)

            by_label = lambda r: {
                e["label"]: record_from_wire(e["record"])
                for e in r.final.values()
            }
            assert by_label(first) == by_label(second)

        drive(svc_config(tmp_path), body, servers=True)


class TestWireRejections:
    def test_malformed_frames_get_typed_error_frames(self, tmp_path):
        """Garbage, version skew, unknown ops, and unknown apps each
        come back as a typed error frame — and the connection survives
        to serve a valid request afterwards."""
        probes = [
            (b"this is not json\n", "protocol"),
            (b'[1, 2, 3]\n', "protocol"),
            # encode_frame stamps the correct version, so skew must be
            # hand-rolled.
            (json.dumps({"v": PROTOCOL_VERSION + 7, "op": "ping"})
             .encode() + b"\n", "version-skew"),
            (encode_frame({"op": "no-such-op"}), "protocol"),
            (encode_frame({"op": "submit", "experiment": "figNaN"}),
             "bad-spec"),
        ]

        async def body(service):
            def run_probes():
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(10.0)
                sock.connect(service.config.socket_path)
                fh = sock.makefile("rwb")
                kinds = []
                for raw, _ in probes:
                    fh.write(raw)
                    fh.flush()
                    reply = json.loads(fh.readline())
                    assert reply["ok"] is False
                    kinds.append(reply["error"]["kind"])
                # Same connection still answers a healthy request.
                fh.write(encode_frame({"op": "ping"}))
                fh.flush()
                pong = json.loads(fh.readline())
                sock.close()
                return kinds, pong

            kinds, pong = await asyncio.to_thread(run_probes)
            assert kinds == [expected for _, expected in probes]
            assert pong["ok"] is True

        drive(svc_config(tmp_path), body, servers=True)
