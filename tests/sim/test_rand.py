"""Tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rand import DeterministicRng


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRng(42), DeterministicRng(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRng(1), DeterministicRng(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_zero_seed_works(self):
        rng = DeterministicRng(0)
        assert rng.next_u64() != rng.next_u64()

    def test_uniform_range(self):
        rng = DeterministicRng(7)
        for _ in range(1000):
            u = rng.uniform()
            assert 0.0 <= u < 1.0

    def test_uniform_roughly_uniform(self):
        rng = DeterministicRng(7)
        mean = sum(rng.uniform() for _ in range(10_000)) / 10_000
        assert 0.45 < mean < 0.55

    def test_randint_inclusive_bounds(self):
        rng = DeterministicRng(3)
        values = {rng.randint(2, 5) for _ in range(500)}
        assert values == {2, 3, 4, 5}

    def test_randint_bad_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).randint(5, 2)

    def test_choice(self):
        rng = DeterministicRng(1)
        seq = ["a", "b", "c"]
        assert {rng.choice(seq) for _ in range(100)} == set(seq)

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_fork_streams_independent(self):
        parent = DeterministicRng(9)
        c1, c2 = parent.fork(1), parent.fork(2)
        assert [c1.next_u64() for _ in range(5)] != [c2.next_u64() for _ in range(5)]

    def test_fork_deterministic(self):
        a = DeterministicRng(9).fork(1)
        b = DeterministicRng(9).fork(1)
        assert a.next_u64() == b.next_u64()

    @given(st.integers(min_value=0, max_value=2**63))
    def test_never_stuck(self, seed):
        rng = DeterministicRng(seed)
        values = {rng.next_u64() for _ in range(10)}
        assert len(values) == 10
