"""Tests for concurrent kernel co-scheduling and the fallback rule."""

import pytest

from repro.arch.config import fermi_like
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.multikernel import (
    ConcurrentLaunchResult,
    kernels_similar,
    launch_concurrent,
)
from repro.sim.technique import BaselineTechnique
from tests.conftest import looped_kernel, straightline_kernel


@pytest.fixture
def config():
    return fermi_like(
        name="multi-test", num_sms=2, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


class TestSimilarity:
    def test_identical_kernels_similar(self):
        assert kernels_similar([straightline_kernel(), straightline_kernel()])

    def test_renamed_copy_still_similar(self):
        a = straightline_kernel()
        b = a.with_metadata(name="other-name")
        assert kernels_similar([a, b])

    def test_different_programs_dissimilar(self):
        assert not kernels_similar([straightline_kernel(), looped_kernel()])


class TestLaunchConcurrent:
    def test_homogeneous_launch(self, config):
        k = straightline_kernel()
        result = launch_concurrent([k, k], [2, 2], config)
        assert result.cycles > 0
        assert not result.fell_back_to_default
        assert result.stats.total.ctas_launched == 4

    def test_dissimilar_kernels_fall_back(self, config):
        """The paper's rule: dissimilar co-scheduled kernels run in the
        default mode with zero-sized extended sets."""
        a, b = straightline_kernel(), looped_kernel()
        result = launch_concurrent(
            [a, b], [2, 2], config, RegMutexTechnique(extended_set_size=2)
        )
        assert result.fell_back_to_default
        assert result.stats.technique == "baseline(fallback)"
        for compiled in result.kernels:
            assert not compiled.metadata.uses_regmutex
            assert compiled.regmutex_instruction_count() == 0
        # Zero acquires happened.
        assert result.stats.total.acquire_attempts == 0

    def test_dissimilar_under_baseline_is_not_a_fallback(self, config):
        result = launch_concurrent(
            [straightline_kernel(), looped_kernel()], [1, 1], config,
            BaselineTechnique(),
        )
        assert not result.fell_back_to_default

    def test_all_work_completes(self, config):
        a, b = straightline_kernel(), looped_kernel()
        result = launch_concurrent([a, b], [3, 2], config)
        assert result.stats.total.ctas_launched == 5
        # Both kernels' instruction mixes executed: issue count exceeds
        # what either kernel alone would produce.
        warps = 2  # 64 threads / 32
        min_issued = (len(a) * 3 + len(b) * 2) * warps
        assert result.stats.total.instructions_issued >= min_issued

    def test_input_validation(self, config):
        k = straightline_kernel()
        with pytest.raises(ValueError):
            launch_concurrent([], [], config)
        with pytest.raises(ValueError):
            launch_concurrent([k], [1, 2], config)
        with pytest.raises(ValueError):
            launch_concurrent([k], [0], config)

    def test_residency_sized_for_worst_kernel(self, config):
        """Mixed residency must respect the most register-hungry kernel."""
        from repro.isa.builder import KernelBuilder
        small = straightline_kernel()
        bld = KernelBuilder(regs_per_thread=32, threads_per_cta=64)
        bld.ldc(31)
        bld.exit()
        fat = bld.build()
        result = launch_concurrent([small, fat], [2, 2], config)
        # 4096 regs / (32 regs x 64 thr) = 2 CTAs: the mix caps at 2.
        assert result.stats.ctas_per_sm == 2


class TestScheduleInterleaving:
    def test_round_robin_cta_order(self, config):
        """CTAs of co-scheduled kernels interleave round-robin, so one
        kernel cannot starve the other at dispatch."""
        from repro.sim.multikernel import launch_concurrent
        a = straightline_kernel(4, name="ka")
        b = straightline_kernel(12, name="kb")
        # Same program length difference makes them dissimilar.
        result = launch_concurrent([a, b], [4, 2], config)
        # All 6 CTAs ran; the interleave is ka kb ka kb ka ka.
        assert result.stats.total.ctas_launched == 6

    def test_single_kernel_degenerates_to_plain_launch(self, config):
        from repro.sim.multikernel import launch_concurrent
        from repro.sim.gpu import Gpu
        from repro.sim.technique import BaselineTechnique
        k = straightline_kernel()
        multi = launch_concurrent([k], [4], config)
        plain = Gpu(config, BaselineTechnique()).launch(k, grid_ctas=4)
        # Same work; cycle counts differ only through CTA->SM placement
        # and seeding, so compare conservatively.
        assert multi.stats.total.instructions_issued == (
            plain.stats.total.instructions_issued
        )
