"""Progress watchdog, cycle-limit backstop, and structured deadlock errors."""

import dataclasses

import pytest

from repro.arch.config import fermi_like
from repro.errors import (
    CycleLimitExceededError,
    DeadlockDiagnostic,
    SimulationDeadlockError,
    SimulationError,
)
from repro.isa.builder import KernelBuilder
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.gpu import Gpu
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique
from tests.conftest import looped_kernel, straightline_kernel


def srp_kernel():
    """Pre-instrumented acquire/work/release kernel (|Bs|=|Es|=4)."""
    b = KernelBuilder(name="srp-probe", regs_per_thread=8, threads_per_cta=64)
    for reg in range(4):
        b.ldc(reg)
    b.acquire()
    b.alu(4, 0, 1)
    b.alu(5, 4, 2)
    b.release()
    b.store(0, 5)
    b.exit()
    return b.build().with_metadata(base_set_size=4, extended_set_size=4)


def starved_sm(config, retry_policy, num_sections=0):
    """An SM whose warps contend for an SRP that can never satisfy them.

    ``num_sections=0`` means every acquire fails forever: with the
    wakeup policy all warps park (provable deadlock, no timers); with
    the eager policy they re-poll on backoff timers (livelock — only
    the watchdog can see it).
    """
    kernel = srp_kernel()
    stats = SmStats()
    state = RegMutexSmState(
        kernel, config, stats,
        num_sections=num_sections, retry_policy=retry_policy,
    )
    return StreamingMultiprocessor(
        sm_id=0, config=config, kernel=kernel, technique_state=state,
        ctas_resident_limit=2, total_ctas=4,
        rng=DeterministicRng(7), stats=stats,
    )


class TestDeadlockDetection:
    def test_wakeup_starvation_is_provable_deadlock(self, tiny_config):
        sm = starved_sm(tiny_config, "wakeup")
        with pytest.raises(SimulationDeadlockError, match="no pending timer") as ei:
            sm.run()
        diag = ei.value.diagnostic
        assert isinstance(diag, DeadlockDiagnostic)
        assert diag.blocked_on_acquire()           # waiters are visible
        assert diag.technique["num_sections"] == 0  # and so is the SRP
        # Caught essentially immediately — orders of magnitude under the
        # acceptance bound.
        assert diag.cycle < 100_000

    def test_eager_starvation_caught_by_watchdog(self, tiny_config):
        sm = starved_sm(tiny_config, "eager")
        with pytest.raises(SimulationDeadlockError, match="watchdog") as ei:
            sm.run()
        diag = ei.value.diagnostic
        assert isinstance(diag, DeadlockDiagnostic)
        # Fires one window past the last progress, never later than two.
        window = tiny_config.watchdog_window
        assert diag.cycle - diag.last_progress_cycle > window
        assert diag.cycle < 2 * window + 1_000
        assert diag.cycle < 100_000

    def test_watchdog_disabled_falls_through_to_cycle_limit(self, tiny_config):
        config = dataclasses.replace(tiny_config, watchdog_window=0)
        sm = starved_sm(config, "eager")
        with pytest.raises(CycleLimitExceededError) as ei:
            sm.run(max_cycles=30_000)
        assert ei.value.kind == "cycle-limit"
        assert ei.value.diagnostic is not None

    def test_deadlock_errors_are_simulation_errors(self, tiny_config):
        sm = starved_sm(tiny_config, "wakeup")
        with pytest.raises(SimulationError) as ei:
            sm.run()
        assert ei.value.kind == "deadlock"

    def test_diagnostic_summary_mentions_waiters(self, tiny_config):
        sm = starved_sm(tiny_config, "wakeup")
        with pytest.raises(SimulationDeadlockError) as ei:
            sm.run()
        assert "wait_acquire" in str(ei.value)


class TestNoFalsePositives:
    """Legitimate workloads — including long memory stalls and barriers —
    must never trip the watchdog."""

    def test_straightline_completes(self, tiny_config):
        result = Gpu(tiny_config, BaselineTechnique()).launch(
            straightline_kernel(), grid_ctas=8
        )
        assert result.cycles > 0

    def test_looped_kernel_completes(self, tiny_config):
        result = Gpu(tiny_config, BaselineTechnique()).launch(
            looped_kernel(trips=16), grid_ctas=8
        )
        assert result.cycles > 0

    def test_contended_regmutex_completes(self, tiny_config):
        # One section and many warps: heavy acquire contention, but a
        # live schedule — progress is slow, not absent.
        kernel = srp_kernel()
        stats = SmStats()
        state = RegMutexSmState(
            kernel, tiny_config, stats, num_sections=1, retry_policy="eager"
        )
        sm = StreamingMultiprocessor(
            sm_id=0, config=tiny_config, kernel=kernel, technique_state=state,
            ctas_resident_limit=2, total_ctas=6,
            rng=DeterministicRng(11), stats=stats,
        )
        assert sm.run().cycles > 0


class TestMultiWindowSleep:
    """Regression: the fast-forward watchdog credit.

    A fast-forward that jumps to a *completion-backed* target (an
    in-flight memory request or a scoreboard writeback) is real
    progress and must be credited against the watchdog, even when the
    jump spans several watchdog windows; a jump to a pure sleeper-wake
    target (eager acquire backoff) must NOT be credited, or livelocks
    that re-poll forever would look alive.  Both halves are pinned here
    with a window far smaller than one DRAM round-trip.
    """

    @staticmethod
    def _tight_window_config(engine, **overrides):
        base = dict(
            name="tight-window",
            num_sms=1,
            max_warps_per_sm=8,
            max_ctas_per_sm=4,
            max_threads_per_sm=256,
            registers_per_sm=4096,
            shared_mem_per_sm=16 * 1024,
            dram_latency=400,
            l1_hit_latency=10,
            watchdog_window=50,
            issue_engine=engine,
        )
        base.update(overrides)
        return fermi_like(**base)

    @staticmethod
    def _memory_sleep_kernel():
        # One lone warp issues a DRAM load and sleeps ~400 cycles — eight
        # watchdog windows — with nothing else to issue.
        b = KernelBuilder(name="mem-sleep", regs_per_thread=4,
                          threads_per_cta=32)
        b.ldc(0)
        b.load(1, 0)
        b.alu(2, 1, 1)
        b.store(0, 2)
        b.exit()
        return b.build()

    @pytest.mark.parametrize("engine", ("scan", "event", "columnar"))
    def test_multi_window_memory_sleep_completes(self, engine):
        config = self._tight_window_config(engine)
        result = Gpu(config, BaselineTechnique()).launch(
            self._memory_sleep_kernel(), grid_ctas=1
        )
        # The run genuinely outlived the window many times over.
        assert result.cycles > 4 * config.watchdog_window

    @pytest.mark.parametrize("engine", ("scan", "event", "columnar"))
    def test_credit_does_not_change_the_schedule(self, engine):
        # Crediting skips touches only watchdog bookkeeping: the result
        # must be bit-identical to a run where the watchdog never comes
        # close to firing.
        tight = Gpu(self._tight_window_config(engine), BaselineTechnique())
        roomy = Gpu(
            self._tight_window_config(engine, watchdog_window=1_000_000),
            BaselineTechnique(),
        )
        kernel = self._memory_sleep_kernel()
        assert tight.launch(kernel, grid_ctas=1) == roomy.launch(
            kernel, grid_ctas=1
        )

    def test_eager_livelock_still_caught_with_tight_window(self):
        # The other side of the boundary: backoff-timer wakeups are not
        # completion-backed, so starved eager re-polling still trips the
        # watchdog even though timers fire constantly.
        config = self._tight_window_config("scan", dram_latency=80)
        sm = starved_sm(config, "eager")
        with pytest.raises(SimulationDeadlockError, match="watchdog"):
            sm.run()


class TestCycleLimit:
    def test_max_cycles_exceeded_raises_structured_error(self, tiny_config):
        gpu = Gpu(tiny_config, BaselineTechnique())
        with pytest.raises(CycleLimitExceededError) as ei:
            gpu.launch(looped_kernel(trips=64), grid_ctas=16, max_cycles=10)
        assert ei.value.kind == "cycle-limit"
        assert isinstance(ei.value.diagnostic, DeadlockDiagnostic)
        assert ei.value.diagnostic.warps  # snapshot captured mid-flight

    def test_max_cycles_threads_through_multikernel(self, tiny_config):
        from repro.sim.multikernel import launch_concurrent

        kernels = [straightline_kernel(name="a"), straightline_kernel(name="b")]
        with pytest.raises(CycleLimitExceededError):
            launch_concurrent(
                kernels, [4, 4], tiny_config,
                technique=BaselineTechnique(), max_cycles=5,
            )

    def test_generous_limit_does_not_fire(self, tiny_config):
        gpu = Gpu(tiny_config, BaselineTechnique())
        result = gpu.launch(looped_kernel(), grid_ctas=4, max_cycles=1_000_000)
        assert result.cycles < 1_000_000
