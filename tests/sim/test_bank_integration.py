"""Integration tests for the optional bank-conflict timing model."""

import dataclasses

import pytest

from repro.arch.config import fermi_like
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from repro.sim.warp import Warp
from tests.conftest import straightline_kernel


@pytest.fixture
def base_config():
    return fermi_like(
        name="banked", num_sms=1, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


def _run(kernel, config):
    stats = SmStats()
    sm = StreamingMultiprocessor(
        sm_id=0, config=config, kernel=kernel,
        technique_state=SmTechniqueState(kernel, config, stats),
        ctas_resident_limit=1, total_ctas=1,
        rng=DeterministicRng(1), stats=stats,
    )
    return sm.run(), sm


def conflict_heavy_kernel():
    """Every instruction reads two registers 16 apart -> same bank."""
    from repro.isa.builder import KernelBuilder
    b = KernelBuilder(regs_per_thread=20, threads_per_cta=32)
    b.ldc(0)
    b.ldc(16)
    for _ in range(20):
        b.alu(0, 0, 16)   # R0 and R16 share a bank (16 banks)
    b.store(0, 0)
    b.exit()
    return b.build()


class TestBankIntegration:
    def test_disabled_by_default(self, base_config):
        _, sm = _run(straightline_kernel(), base_config)
        assert sm.banked_rf is None

    def test_conflicts_slow_execution(self, base_config):
        kernel = conflict_heavy_kernel()
        banked = dataclasses.replace(base_config, model_bank_conflicts=True)
        stats_plain, _ = _run(kernel, base_config)
        stats_banked, sm = _run(kernel, banked)
        assert sm.banked_rf is not None
        assert sm.banked_rf.total_conflicts > 0
        assert stats_banked.cycles > stats_plain.cycles

    def test_conflict_free_kernel_unaffected(self, base_config):
        from repro.isa.builder import KernelBuilder
        b = KernelBuilder(regs_per_thread=4, threads_per_cta=32)
        b.ldc(0)
        b.ldc(1)
        for _ in range(10):
            b.alu(2, 0, 1)   # banks 0 and 1: never conflict
        b.store(2, 2)
        b.exit()
        kernel = b.build()
        banked = dataclasses.replace(base_config, model_bank_conflicts=True)
        stats_plain, _ = _run(kernel, base_config)
        stats_banked, sm = _run(kernel, banked)
        assert sm.banked_rf.total_conflicts == 0
        assert stats_banked.cycles == stats_plain.cycles

    def test_regmutex_mux_resolution(self, base_config):
        """The RegMutex technique resolves extended registers through the
        SRP section, so banking sees SRP-relative physical indices."""
        kernel = straightline_kernel().with_metadata(
            regs_per_thread=8, base_set_size=6, extended_set_size=2
        )
        stats = SmStats()
        state = RegMutexSmState(kernel, base_config, stats, num_sections=2)
        warp = Warp(0, 0, kernel, DeterministicRng(0))
        base_phys = state.resolve_physical(warp, 3)
        assert base_phys == 3  # slot 0, base block
        state.try_acquire(warp, 0)
        ext_phys = state.resolve_physical(warp, 6)
        srp_offset = 6 * base_config.max_warps_per_sm
        assert ext_phys == srp_offset + 2 * (warp.srp_section or 0)

    def test_extended_without_section_falls_back(self, base_config):
        kernel = straightline_kernel().with_metadata(
            regs_per_thread=8, base_set_size=6, extended_set_size=2
        )
        stats = SmStats()
        state = RegMutexSmState(kernel, base_config, stats, num_sections=2)
        warp = Warp(0, 0, kernel, DeterministicRng(0))
        # No section held: the timing model falls back to the base formula
        # rather than crashing (the verifier forbids this case statically).
        assert state.resolve_physical(warp, 6) == 6