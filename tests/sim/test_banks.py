"""Tests for the banked register file model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Instruction, Opcode
from repro.sim.banks import (
    BankedRegisterFile,
    operand_conflict_penalty,
)


class TestBankedRegisterFile:
    def test_distinct_banks_no_conflict(self):
        rf = BankedRegisterFile(num_banks=16)
        report = rf.collect(0, [0, 1, 2])
        assert report.conflicts == 0
        assert report.extra_cycles == 0

    def test_same_bank_conflicts(self):
        rf = BankedRegisterFile(num_banks=16)
        report = rf.collect(0, [0, 16, 32])  # all bank 0
        assert report.conflicts == 2

    def test_duplicate_register_not_a_conflict(self):
        rf = BankedRegisterFile(num_banks=16)
        report = rf.collect(0, [5, 5, 5])
        assert report.reads == 1
        assert report.conflicts == 0

    def test_warp_offset_spreads_banks(self):
        rf = BankedRegisterFile(num_banks=16)
        assert rf.bank_of(0, 0) != rf.bank_of(0, 1)

    def test_conflict_rate(self):
        rf = BankedRegisterFile(num_banks=4)
        rf.collect(0, [0, 4])   # conflict
        rf.collect(0, [1, 2])   # clean
        assert rf.total_reads == 4
        assert rf.total_conflicts == 1
        assert rf.conflict_rate == 0.25

    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError):
            BankedRegisterFile(0)

    @given(st.lists(st.integers(min_value=0, max_value=1023),
                    min_size=1, max_size=6),
           st.integers(min_value=0, max_value=47))
    def test_conflicts_bounded_by_reads(self, sources, warp):
        rf = BankedRegisterFile(num_banks=16)
        report = rf.collect(warp, sources)
        assert 0 <= report.conflicts < max(1, report.reads)


class TestOperandPenalty:
    def test_penalty_through_baseline_mapper(self):
        from repro.sim.regfile import BaselineRegisterMapper
        mapper = BaselineRegisterMapper(coeff=32, total_registers=1024)
        rf = BankedRegisterFile(num_banks=16)
        inst = Instruction(Opcode.IADD, (0,), (1, 17))
        penalty = operand_conflict_penalty(
            rf, 0, inst, lambda w, r: mapper.resolve(w, r).physical_index
        )
        assert penalty == 1  # physical 1 and 17 share bank 1 for warp 0

    def test_no_sources_no_penalty(self):
        rf = BankedRegisterFile()
        inst = Instruction(Opcode.LDC, (0,))
        assert operand_conflict_penalty(rf, 0, inst, lambda w, r: r) == 0

    def test_regmutex_mux_changes_banking(self):
        """The same architected operands land in different banks when one
        of them resolves through the SRP — the mapping mux affects
        conflict timing, as the hardware design implies."""
        from repro.regmutex.mapping import RegMutexRegisterMapper
        from repro.regmutex.srp import SharedRegisterPool

        srp = SharedRegisterPool(max_warps=8, num_sections=4)
        srp.acquire(0)
        mapper = RegMutexRegisterMapper(
            base_set_size=16, extended_set_size=4,
            resident_warps=8, total_registers=1024, srp=srp,
        )
        rf = BankedRegisterFile(num_banks=16)
        inst = Instruction(Opcode.IADD, (0,), (0, 16))  # base + extended
        penalty = operand_conflict_penalty(
            rf, 0, inst, lambda w, r: mapper.resolve(w, r).physical_index
        )
        # R0 -> physical 0 (bank 0); R16 -> SRP offset 128 (bank 0 too):
        # the mux decides, and here it happens to conflict.
        base = mapper.resolve(0, 0).physical_index
        ext = mapper.resolve(0, 16).physical_index
        expected = 1 if (base % 16) == (ext % 16) else 0
        assert penalty == expected
