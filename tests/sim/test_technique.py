"""Tests for the technique interface defaults and baseline."""

from repro.arch.config import GTX480
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique, SmTechniqueState
from repro.sim.rand import DeterministicRng
from repro.sim.warp import Warp
from tests.conftest import straightline_kernel


class TestDefaults:
    def test_default_state_is_permissive(self):
        kernel = straightline_kernel()
        state = SmTechniqueState(kernel, GTX480, SmStats())
        warp = Warp(0, 0, kernel, DeterministicRng(0))
        assert state.can_issue(warp, kernel[0], 0)
        assert state.try_acquire(warp, 0)     # stock GPU: acquire is a no-op
        state.release(warp, 0)                 # and so is release
        state.on_issue(warp, kernel[0], 0)
        state.on_warp_finish(warp, 0)
        assert list(state.wakeup_pending()) == []

    def test_baseline_occupancy_matches_calculator(self):
        from repro.arch.occupancy import theoretical_occupancy
        kernel = straightline_kernel()
        tech = BaselineTechnique()
        assert tech.occupancy(kernel, GTX480) == theoretical_occupancy(
            GTX480, kernel.metadata
        )

    def test_baseline_prepare_is_identity(self):
        kernel = straightline_kernel()
        assert BaselineTechnique().prepare_kernel(kernel, GTX480) is kernel


class TestStats:
    def test_acquire_success_rate_default_one(self):
        assert SmStats().acquire_success_rate == 1.0

    def test_merge_takes_max_cycles_and_sums_counts(self):
        a, b = SmStats(), SmStats()
        a.cycles, b.cycles = 100, 80
        a.instructions_issued, b.instructions_issued = 10, 20
        a.merge(b)
        assert a.cycles == 100
        assert a.instructions_issued == 30

    def test_achieved_occupancy(self):
        s = SmStats()
        s.cycles = 10
        s.resident_warp_cycles = 240
        assert s.achieved_occupancy(48) == 0.5
        assert SmStats().achieved_occupancy(48) == 0.0

    def test_kernel_stats_reduction_helpers(self):
        from repro.sim.stats import KernelStats
        base = KernelStats("k", "c", "baseline", cycles=200,
                           theoretical_occupancy=0.5, ctas_per_sm=2)
        fast = KernelStats("k", "c", "regmutex", cycles=150,
                           theoretical_occupancy=1.0, ctas_per_sm=4)
        assert fast.cycle_reduction_vs(base) == 0.25
        assert fast.cycle_increase_vs(base) == -0.25
