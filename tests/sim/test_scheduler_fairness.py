"""Quantitative scheduler-behaviour tests: GTO greediness vs LRR fairness."""

import dataclasses

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from repro.sim.trace import TracingTechniqueState


@pytest.fixture
def config():
    return fermi_like(
        name="sched-test", num_sms=1, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8, num_schedulers=1,
    )


def alu_kernel(n=30):
    """Pure ALU with no intra-warp dependence: any warp can always issue,
    isolating the scheduling policy itself."""
    b = KernelBuilder(regs_per_thread=6, threads_per_cta=128)  # 4 warps
    for r in range(6):
        b.ldc(r)
    for i in range(n):
        b.alu(i % 3, 3 + i % 3, 3 + (i + 1) % 3)
    b.store(0, 0)
    b.exit()
    return b.build()


def _issue_sequence(config, policy):
    cfg = dataclasses.replace(config, scheduler_policy=policy)
    kernel = alu_kernel()
    stats = SmStats()
    traced = TracingTechniqueState(SmTechniqueState(kernel, cfg, stats))
    sm = StreamingMultiprocessor(
        sm_id=0, config=cfg, kernel=kernel, technique_state=traced,
        ctas_resident_limit=1, total_ctas=1,
        rng=DeterministicRng(1), stats=stats,
    )
    sm.run()
    return [e.warp_id for e in traced.trace.of_kind("issue")]


def _longest_run(seq):
    best = run = 1
    for a, b in zip(seq, seq[1:]):
        run = run + 1 if a == b else 1
        best = max(best, run)
    return best


class TestPolicies:
    def test_gto_produces_long_runs(self, config):
        """Greedy-then-oldest sticks with one warp until it stalls (here a
        WAW hazard every third ALU bounds runs), producing clearly longer
        same-warp issue runs than round-robin ever can."""
        gto = _issue_sequence(config, "gto")
        lrr = _issue_sequence(config, "lrr")
        assert _longest_run(gto) >= 4
        assert _longest_run(gto) > _longest_run(lrr)

    def test_lrr_rotates(self, config):
        """Loose round-robin never issues the same warp twice in a row
        when other warps are ready."""
        seq = _issue_sequence(config, "lrr")
        assert _longest_run(seq) <= 2

    def test_both_complete_all_work(self, config):
        gto = _issue_sequence(config, "gto")
        lrr = _issue_sequence(config, "lrr")
        assert len(gto) == len(lrr)
        # Per-warp totals identical: scheduling reorders, never drops.
        from collections import Counter
        assert Counter(gto) == Counter(lrr)
