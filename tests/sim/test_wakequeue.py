"""Wake-queue hygiene: the event-driven issue engine vs the scan oracle.

The event engine's contract is *bit-identity* with the retained naive
reference stepper: same final cycle count and same ``SmStats`` down to
each stall counter, for any kernel, technique, scheduler policy, and
issue width.  The property test here throws randomized generator
kernels at that contract; the staleness tests pin the two transition
paths where an event could plausibly be lost (a CTA retiring while
other warps sleep, an acquire wakeup handed off past a finished warp).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from repro.sim.wakequeue import (
    QS_ACQUIRE,
    QS_BARRIER,
    QS_OUT,
    QS_READY,
    QS_SLEEPING,
    SchedulerWakeQueue,
)
from repro.sim.warp import Warp, WarpStatus
from tests.conftest import straightline_kernel


def _config(**overrides):
    base = dict(
        name="wq-tiny",
        num_sms=1,
        max_warps_per_sm=8,
        max_ctas_per_sm=4,
        max_threads_per_sm=256,
        registers_per_sm=4096,
        shared_mem_per_sm=16 * 1024,
        dram_latency=80,
        l1_hit_latency=10,
    )
    base.update(overrides)
    return fermi_like(**base)


def _random_kernel(seed: int):
    """A deterministic random kernel: ALU/FMA/load/store blocks, counted
    loops, optional probabilistic diamonds, and top-level barriers.

    Barriers are emitted only between blocks (never inside a
    probabilistic arm), so every live warp reaches every barrier and
    the kernel cannot deadlock by construction.
    """
    rng = random.Random(seed)
    regs = rng.randint(4, 8)
    b = KernelBuilder(
        name=f"rand{seed}",
        regs_per_thread=regs,
        threads_per_cta=rng.choice((32, 64, 96)),
    )
    for r in range(regs):
        b.ldc(r)
    for block in range(rng.randint(2, 4)):
        looped = rng.random() < 0.5
        if looped:
            b.label(f"loop{block}")
        for _ in range(rng.randint(2, 7)):
            roll = rng.random()
            if roll < 0.45:
                b.alu(rng.randrange(regs), rng.randrange(regs),
                      rng.randrange(regs))
            elif roll < 0.55:
                b.fma(rng.randrange(regs), rng.randrange(regs),
                      rng.randrange(regs), rng.randrange(regs))
            elif roll < 0.8:
                b.load(rng.randrange(regs), rng.randrange(regs))
            else:
                b.store(rng.randrange(regs), rng.randrange(regs))
        if looped:
            b.setp(1, 0, 1)
            b.branch(f"loop{block}", 1, trip_count=rng.randint(1, 3))
        elif rng.random() < 0.4:
            # Forward diamond that rejoins before the next block.
            b.setp(2, 0, 1)
            b.branch(f"skip{block}", 2, taken_probability=0.5)
            b.alu(rng.randrange(regs), rng.randrange(regs))
            b.label(f"skip{block}")
            b.nop()  # anchor the join label
        if rng.random() < 0.5:
            b.barrier()
    b.store(0, 1)
    b.exit()
    return b.build()


def _acquire_kernel(work: int = 6):
    """An explicitly instrumented acquire/release kernel (|Bs|=2 of 4
    registers) — drives the park/wakeup paths without relying on the
    compiler's profitability heuristic."""
    b = KernelBuilder(name="contended", regs_per_thread=4, threads_per_cta=32)
    b.ldc(0)
    b.ldc(1)
    b.acquire()
    for i in range(work):
        b.alu(2 + (i % 2), 0, 1)
    b.load(3, 0)
    b.alu(2, 3, 1)
    b.release()
    b.exit()
    return b.build().with_metadata(base_set_size=2, extended_set_size=2)


def _run_sm(kernel, config, state_factory, ctas_resident, total_ctas):
    stats = SmStats()
    sm = StreamingMultiprocessor(
        sm_id=0,
        config=config,
        kernel=kernel,
        technique_state=state_factory(kernel, config, stats),
        ctas_resident_limit=ctas_resident,
        total_ctas=total_ctas,
        rng=DeterministicRng(7),
        stats=stats,
    )
    sm.run()
    return sm


def _outcome(sm):
    return (sm.cycle, dataclasses.asdict(sm.stats))


def _assert_engine_drained(sm):
    """Post-run hygiene: every engine structure must be empty — a leaked
    entry means a transition was lost somewhere."""
    engine = sm._engine
    assert engine is not None
    engine.check_hygiene()
    for unit in engine.units:
        assert unit.ready == []
        assert unit.sleepers == []
        assert unit.barrier_count == 0
        assert unit.acquire_count == 0


def _both_engines(kernel, config, state_factory, ctas_resident, total_ctas):
    event = _run_sm(
        kernel, dataclasses.replace(config, issue_engine="event"),
        state_factory, ctas_resident, total_ctas,
    )
    scan = _run_sm(
        kernel, dataclasses.replace(config, issue_engine="scan"),
        state_factory, ctas_resident, total_ctas,
    )
    _assert_engine_drained(event)
    return _outcome(event), _outcome(scan)


class TestEngineIdentityProperty:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("policy", ["gto", "lrr"])
    def test_random_kernels_identical(self, seed, policy):
        kernel = _random_kernel(seed)
        config = _config(scheduler_policy=policy)
        event, scan = _both_engines(
            kernel, config, SmTechniqueState, ctas_resident=2, total_ctas=5
        )
        assert event == scan

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_issue_width_identical(self, seed):
        kernel = _random_kernel(seed + 100)
        config = _config(issue_width_per_scheduler=2)
        event, scan = _both_engines(
            kernel, config, SmTechniqueState, ctas_resident=2, total_ctas=4
        )
        assert event == scan

    @pytest.mark.parametrize("retry_policy", ["wakeup", "eager"])
    def test_contended_acquire_identical(self, retry_policy):
        """One SRP section, three resident CTAs: every acquire path —
        grant, park, wakeup, eager backoff — fires, under contention."""
        kernel = _acquire_kernel()

        def make_state(k, c, s):
            return RegMutexSmState(
                k, c, s, num_sections=1, retry_policy=retry_policy
            )

        event, scan = _both_engines(
            kernel, _config(), make_state, ctas_resident=3, total_ctas=6
        )
        assert event == scan
        assert event[1]["acquire_attempts"] > event[1]["acquire_successes"]

    def test_lrr_contended_acquire_identical(self):
        kernel = _acquire_kernel()

        def make_state(k, c, s):
            return RegMutexSmState(k, c, s, num_sections=1)

        event, scan = _both_engines(
            kernel, _config(scheduler_policy="lrr"), make_state,
            ctas_resident=3, total_ctas=5,
        )
        assert event == scan


class TestStalenessPaths:
    def test_cta_retire_while_others_asleep(self):
        """A CTA retires (and a new one launches) while another CTA's
        warps sleep on a long DRAM stall: the sleeper heap entries must
        survive the retire/launch churn untouched, and the replacement
        CTA's warps must enter the ready lists immediately."""
        b = KernelBuilder(name="sleepy", regs_per_thread=3, threads_per_cta=32)
        b.ldc(0)
        for _ in range(4):
            b.load(1, 0)
            b.alu(2, 1, 0)  # RAW on the load: a guaranteed sleep window
        b.exit()
        kernel = b.build()
        config = _config(l1_hit_rate=0.0, dram_latency=200)
        event, scan = _both_engines(
            kernel, config, SmTechniqueState, ctas_resident=3, total_ctas=7
        )
        assert event == scan

    def test_acquire_wakeup_handoff(self):
        """A warp that finishes while holding an unconsumed wakeup must
        hand it to the next waiter, and the engine must re-arm that
        waiter (not the finished warp)."""
        kernel = _acquire_kernel()
        config = _config(issue_engine="event")
        stats = SmStats()
        state = RegMutexSmState(kernel, config, stats, num_sections=1)
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel, technique_state=state,
            ctas_resident_limit=3, total_ctas=3,
            rng=DeterministicRng(7), stats=stats,
        )
        warps = [cta.warps[0] for cta in sm.resident_ctas]
        holder, first, second = warps
        engine = sm._engine

        # Manufacture the interleaving the property test cannot force:
        # holder owns the section; first and second park behind it.
        assert state.try_acquire(holder, cycle=1)
        for waiter in first, second:
            assert not state.try_acquire(waiter, cycle=1)
            engine.unit_for(waiter).ready.remove(waiter)
            engine.unit_for(waiter).park_acquire(waiter)

        # The release grants `first` a pending wakeup... which it never
        # consumes: it is killed before the next cycle's drain.
        state.release(holder, cycle=2)
        first.finish()
        engine.on_finish(first)
        state.on_warp_finish(first, cycle=2)

        # The drain must wake `second` (the handoff target), and the
        # engine must move it — and only it — back to ready.
        woken = list(state.wakeup_pending())
        assert woken == [second]
        for warp in woken:
            if warp.status is WarpStatus.WAITING_ACQUIRE:
                warp.status = WarpStatus.READY
                engine.on_acquire_wake(warp)
        assert second.qstate == QS_READY
        assert second in engine.unit_for(second).ready
        assert first.qstate == QS_OUT
        assert engine.unit_for(second).acquire_count + \
            engine.unit_for(first).acquire_count == 0
        engine.check_hygiene()


class TestQueueUnit:
    def _warp(self, warp_id):
        return Warp(warp_id, 0, straightline_kernel(), DeterministicRng(warp_id))

    def test_wake_due_restores_id_order(self):
        unit = SchedulerWakeQueue(sched=None)
        w0, w2, w4 = self._warp(0), self._warp(2), self._warp(4)
        unit.add_ready(w2)
        for warp, wake in ((w0, 10), (w4, 5)):
            warp.wake_cycle = wake
            warp.stalled_on = "scoreboard"
            unit.push_sleeper(warp, cycle=1)
        unit.wake_due(4)
        assert unit.ready == [w2]
        unit.wake_due(10)
        assert unit.ready == [w0, w2, w4]
        assert all(w.qstate == QS_READY for w in unit.ready)
        unit.check_hygiene()

    def test_unblock_hooks_are_idempotent(self):
        unit = SchedulerWakeQueue(sched=None)
        warp = self._warp(1)
        unit.add_ready(warp)
        # Already ready: neither hook may double-insert or underflow.
        unit.unblock_acquire(warp)
        unit.unblock_barrier(warp)
        assert unit.ready == [warp]
        assert unit.acquire_count == 0 and unit.barrier_count == 0

    def test_sleeper_flags_track_the_horizon_crossing(self):
        """A non-memory sleeper counts as a memory stall while its wake
        is > HORIZON out, then flips to scoreboard — the scan's
        time-varying classification, reproduced from aggregates."""
        unit = SchedulerWakeQueue(sched=None)
        warp = self._warp(0)
        warp.stalled_on = "scoreboard"
        warp.wake_cycle = 130
        unit.add_ready(warp)
        unit.ready.remove(warp)
        unit.push_sleeper(warp, cycle=100)  # 30 cycles out: far
        assert unit.sleeper_flags(100) == (True, False)
        assert unit.sleeper_flags(109) == (True, False)   # wake-cycle = 21
        assert unit.sleeper_flags(110) == (False, True)   # wake-cycle = 20
        assert unit.sleeper_flags(129) == (False, True)

    def test_dispose_issued_routes_by_status(self):
        unit = SchedulerWakeQueue(sched=None)
        ready_w, sleeper_w, barrier_w, acquire_w = (
            self._warp(i) for i in range(4)
        )
        for w in (ready_w, sleeper_w, barrier_w, acquire_w):
            unit.add_ready(w)
        sleeper_w.wake_cycle = 50  # eager-retry backoff
        barrier_w.status = WarpStatus.AT_BARRIER
        acquire_w.status = WarpStatus.WAITING_ACQUIRE
        for w in (ready_w, sleeper_w, barrier_w, acquire_w):
            unit.dispose_issued(w, cycle=10)
            unit.dispose_issued(w, cycle=10)  # idempotent second call
        assert unit.ready == [ready_w]
        assert sleeper_w.qstate == QS_SLEEPING
        assert barrier_w.qstate == QS_BARRIER
        assert acquire_w.qstate == QS_ACQUIRE
        assert unit.barrier_count == 1 and unit.acquire_count == 1
        assert unit.sleeping_warps() == 1
        unit.check_hygiene()
