"""Issue-engine identity: scan oracle vs event vs columnar vs native.

Every issue engine's contract is *bit-identity* with the retained naive
reference stepper: same final cycle count and same ``SmStats`` down to
each stall counter, for any kernel, technique, scheduler policy, and
issue width.  The property test here throws randomized generator
kernels at that 4-way contract; the staleness tests pin the transition
paths where an event could plausibly be lost (a CTA retiring while
other warps sleep, an acquire wakeup handed off past a finished warp);
the column-view tests cover the columnar store's own hazards — slot
recycling after CTA retirement and the qstate/status mask invariants.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from repro.sim.wakequeue import (
    QS_ACQUIRE,
    QS_BARRIER,
    QS_OUT,
    QS_READY,
    QS_SLEEPING,
    SchedulerWakeQueue,
)
from repro.sim.warp import Warp, WarpStatus
from tests.conftest import straightline_kernel


def _config(**overrides):
    base = dict(
        name="wq-tiny",
        num_sms=1,
        max_warps_per_sm=8,
        max_ctas_per_sm=4,
        max_threads_per_sm=256,
        registers_per_sm=4096,
        shared_mem_per_sm=16 * 1024,
        dram_latency=80,
        l1_hit_latency=10,
    )
    base.update(overrides)
    return fermi_like(**base)


def _random_kernel(seed: int):
    """A deterministic random kernel: ALU/FMA/load/store blocks, counted
    loops, optional probabilistic diamonds, and top-level barriers.

    Barriers are emitted only between blocks (never inside a
    probabilistic arm), so every live warp reaches every barrier and
    the kernel cannot deadlock by construction.
    """
    rng = random.Random(seed)
    regs = rng.randint(4, 8)
    b = KernelBuilder(
        name=f"rand{seed}",
        regs_per_thread=regs,
        threads_per_cta=rng.choice((32, 64, 96)),
    )
    for r in range(regs):
        b.ldc(r)
    for block in range(rng.randint(2, 4)):
        looped = rng.random() < 0.5
        if looped:
            b.label(f"loop{block}")
        for _ in range(rng.randint(2, 7)):
            roll = rng.random()
            if roll < 0.45:
                b.alu(rng.randrange(regs), rng.randrange(regs),
                      rng.randrange(regs))
            elif roll < 0.55:
                b.fma(rng.randrange(regs), rng.randrange(regs),
                      rng.randrange(regs), rng.randrange(regs))
            elif roll < 0.8:
                b.load(rng.randrange(regs), rng.randrange(regs))
            else:
                b.store(rng.randrange(regs), rng.randrange(regs))
        if looped:
            b.setp(1, 0, 1)
            b.branch(f"loop{block}", 1, trip_count=rng.randint(1, 3))
        elif rng.random() < 0.4:
            # Forward diamond that rejoins before the next block.
            b.setp(2, 0, 1)
            b.branch(f"skip{block}", 2, taken_probability=0.5)
            b.alu(rng.randrange(regs), rng.randrange(regs))
            b.label(f"skip{block}")
            b.nop()  # anchor the join label
        if rng.random() < 0.5:
            b.barrier()
    b.store(0, 1)
    b.exit()
    return b.build()


def _acquire_kernel(work: int = 6):
    """An explicitly instrumented acquire/release kernel (|Bs|=2 of 4
    registers) — drives the park/wakeup paths without relying on the
    compiler's profitability heuristic."""
    b = KernelBuilder(name="contended", regs_per_thread=4, threads_per_cta=32)
    b.ldc(0)
    b.ldc(1)
    b.acquire()
    for i in range(work):
        b.alu(2 + (i % 2), 0, 1)
    b.load(3, 0)
    b.alu(2, 3, 1)
    b.release()
    b.exit()
    return b.build().with_metadata(base_set_size=2, extended_set_size=2)


def _make_sm(kernel, config, state_factory, ctas_resident, total_ctas):
    stats = SmStats()
    return StreamingMultiprocessor(
        sm_id=0,
        config=config,
        kernel=kernel,
        technique_state=state_factory(kernel, config, stats),
        ctas_resident_limit=ctas_resident,
        total_ctas=total_ctas,
        rng=DeterministicRng(7),
        stats=stats,
    )


def _run_sm(kernel, config, state_factory, ctas_resident, total_ctas):
    sm = _make_sm(kernel, config, state_factory, ctas_resident, total_ctas)
    sm.run()
    return sm


def _outcome(sm):
    return (sm.cycle, dataclasses.asdict(sm.stats))


def _assert_engine_drained(sm):
    """Post-run hygiene: every engine structure must be empty — a leaked
    entry means a transition was lost somewhere."""
    engine = sm._engine
    assert engine is not None
    engine.check_hygiene()
    for unit in engine.units:
        assert unit.ready == []
        assert unit.sleepers == []
        assert unit.barrier_count == 0
        assert unit.acquire_count == 0


def _assert_columnar_drained(sm):
    """Post-run hygiene for the columnar core: structures empty, every
    slot released (wid -1, qstate OUT) — a stale entry means a slot
    leaked through the CTA retire path."""
    core = sm._columnar
    assert core is not None
    core.check_hygiene()
    for unit in core.units:
        assert unit.ready == []
        assert unit.sleepers == []
        assert unit.barrier_count == 0
        assert unit.acquire_count == 0
    assert core.wid2slot == {}
    assert all(wid == -1 for wid in core.wid)
    assert all(qs == QS_OUT for qs in core.qstate)


def _all_engines(kernel, config, state_factory, ctas_resident, total_ctas):
    """Outcomes for (event, scan, columnar, native), hygiene-checked.

    ``native`` runs over the same ColumnarCore (falling back to the
    pure stepper when the extension is not built), so the columnar
    drain hygiene applies to it verbatim."""
    event = _run_sm(
        kernel, dataclasses.replace(config, issue_engine="event"),
        state_factory, ctas_resident, total_ctas,
    )
    scan = _run_sm(
        kernel, dataclasses.replace(config, issue_engine="scan"),
        state_factory, ctas_resident, total_ctas,
    )
    columnar = _run_sm(
        kernel, dataclasses.replace(config, issue_engine="columnar"),
        state_factory, ctas_resident, total_ctas,
    )
    native = _run_sm(
        kernel, dataclasses.replace(config, issue_engine="native"),
        state_factory, ctas_resident, total_ctas,
    )
    _assert_engine_drained(event)
    _assert_columnar_drained(columnar)
    _assert_columnar_drained(native)
    return _outcome(event), _outcome(scan), _outcome(columnar), _outcome(native)


class TestEngineIdentityProperty:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("policy", ["gto", "lrr"])
    def test_random_kernels_identical(self, seed, policy):
        kernel = _random_kernel(seed)
        config = _config(scheduler_policy=policy)
        event, scan, columnar, native = _all_engines(
            kernel, config, SmTechniqueState, ctas_resident=2, total_ctas=5
        )
        assert event == scan == columnar == native

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_issue_width_identical(self, seed):
        kernel = _random_kernel(seed + 100)
        config = _config(issue_width_per_scheduler=2)
        event, scan, columnar, native = _all_engines(
            kernel, config, SmTechniqueState, ctas_resident=2, total_ctas=4
        )
        assert event == scan == columnar == native

    @pytest.mark.parametrize("retry_policy", ["wakeup", "eager"])
    def test_contended_acquire_identical(self, retry_policy):
        """One SRP section, three resident CTAs: every acquire path —
        grant, park, wakeup, eager backoff — fires, under contention."""
        kernel = _acquire_kernel()

        def make_state(k, c, s):
            return RegMutexSmState(
                k, c, s, num_sections=1, retry_policy=retry_policy
            )

        event, scan, columnar, native = _all_engines(
            kernel, _config(), make_state, ctas_resident=3, total_ctas=6
        )
        assert event == scan == columnar == native
        assert event[1]["acquire_attempts"] > event[1]["acquire_successes"]

    def test_lrr_contended_acquire_identical(self):
        kernel = _acquire_kernel()

        def make_state(k, c, s):
            return RegMutexSmState(k, c, s, num_sections=1)

        event, scan, columnar, native = _all_engines(
            kernel, _config(scheduler_policy="lrr"), make_state,
            ctas_resident=3, total_ctas=5,
        )
        assert event == scan == columnar == native


class TestNativeFallback:
    def test_missing_extension_warns_once_and_matches_columnar(
        self, monkeypatch
    ):
        """No C extension → issue_engine="native" must still run (pure
        columnar stepper), warn exactly once per process, and produce
        the identical outcome."""
        import warnings

        import repro.sim.sm as sm_mod

        monkeypatch.setattr(sm_mod, "_native", None)
        monkeypatch.setattr(sm_mod, "_NATIVE_FALLBACK_WARNED", False)

        kernel = _random_kernel(5)
        config = _config()

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            native = _run_sm(
                kernel, dataclasses.replace(config, issue_engine="native"),
                SmTechniqueState, ctas_resident=2, total_ctas=4,
            )
            again = _run_sm(
                kernel, dataclasses.replace(config, issue_engine="native"),
                SmTechniqueState, ctas_resident=2, total_ctas=4,
            )
        fallback = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "falling back" in str(w.message)
        ]
        assert len(fallback) == 1, "fallback must warn exactly once"
        assert not native._use_native
        assert _outcome(native) == _outcome(again)

        columnar = _run_sm(
            kernel, dataclasses.replace(config, issue_engine="columnar"),
            SmTechniqueState, ctas_resident=2, total_ctas=4,
        )
        assert _outcome(native) == _outcome(columnar)


class TestStalenessPaths:
    def test_cta_retire_while_others_asleep(self):
        """A CTA retires (and a new one launches) while another CTA's
        warps sleep on a long DRAM stall: the sleeper heap entries must
        survive the retire/launch churn untouched, and the replacement
        CTA's warps must enter the ready lists immediately."""
        b = KernelBuilder(name="sleepy", regs_per_thread=3, threads_per_cta=32)
        b.ldc(0)
        for _ in range(4):
            b.load(1, 0)
            b.alu(2, 1, 0)  # RAW on the load: a guaranteed sleep window
        b.exit()
        kernel = b.build()
        config = _config(l1_hit_rate=0.0, dram_latency=200)
        event, scan, columnar, native = _all_engines(
            kernel, config, SmTechniqueState, ctas_resident=3, total_ctas=7
        )
        assert event == scan == columnar == native

    def test_acquire_wakeup_handoff(self):
        """A warp that finishes while holding an unconsumed wakeup must
        hand it to the next waiter, and the engine must re-arm that
        waiter (not the finished warp)."""
        kernel = _acquire_kernel()
        config = _config(issue_engine="event")
        stats = SmStats()
        state = RegMutexSmState(kernel, config, stats, num_sections=1)
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel, technique_state=state,
            ctas_resident_limit=3, total_ctas=3,
            rng=DeterministicRng(7), stats=stats,
        )
        warps = [cta.warps[0] for cta in sm.resident_ctas]
        holder, first, second = warps
        engine = sm._engine

        # Manufacture the interleaving the property test cannot force:
        # holder owns the section; first and second park behind it.
        assert state.try_acquire(holder, cycle=1)
        for waiter in first, second:
            assert not state.try_acquire(waiter, cycle=1)
            engine.unit_for(waiter).ready.remove(waiter)
            engine.unit_for(waiter).park_acquire(waiter)

        # The release grants `first` a pending wakeup... which it never
        # consumes: it is killed before the next cycle's drain.
        state.release(holder, cycle=2)
        first.finish()
        engine.on_finish(first)
        state.on_warp_finish(first, cycle=2)

        # The drain must wake `second` (the handoff target), and the
        # engine must move it — and only it — back to ready.
        woken = list(state.wakeup_pending())
        assert woken == [second]
        for warp in woken:
            if warp.status is WarpStatus.WAITING_ACQUIRE:
                warp.status = WarpStatus.READY
                engine.on_acquire_wake(warp)
        assert second.qstate == QS_READY
        assert second in engine.unit_for(second).ready
        assert first.qstate == QS_OUT
        assert engine.unit_for(second).acquire_count + \
            engine.unit_for(first).acquire_count == 0
        engine.check_hygiene()


class TestQueueUnit:
    def _warp(self, warp_id):
        return Warp(warp_id, 0, straightline_kernel(), DeterministicRng(warp_id))

    def test_wake_due_restores_id_order(self):
        unit = SchedulerWakeQueue(sched=None)
        w0, w2, w4 = self._warp(0), self._warp(2), self._warp(4)
        unit.add_ready(w2)
        for warp, wake in ((w0, 10), (w4, 5)):
            warp.wake_cycle = wake
            warp.stalled_on = "scoreboard"
            unit.push_sleeper(warp, cycle=1)
        unit.wake_due(4)
        assert unit.ready == [w2]
        unit.wake_due(10)
        assert unit.ready == [w0, w2, w4]
        assert all(w.qstate == QS_READY for w in unit.ready)
        unit.check_hygiene()

    def test_unblock_hooks_are_idempotent(self):
        unit = SchedulerWakeQueue(sched=None)
        warp = self._warp(1)
        unit.add_ready(warp)
        # Already ready: neither hook may double-insert or underflow.
        unit.unblock_acquire(warp)
        unit.unblock_barrier(warp)
        assert unit.ready == [warp]
        assert unit.acquire_count == 0 and unit.barrier_count == 0

    def test_sleeper_flags_track_the_horizon_crossing(self):
        """A non-memory sleeper counts as a memory stall while its wake
        is > HORIZON out, then flips to scoreboard — the scan's
        time-varying classification, reproduced from aggregates."""
        unit = SchedulerWakeQueue(sched=None)
        warp = self._warp(0)
        warp.stalled_on = "scoreboard"
        warp.wake_cycle = 130
        unit.add_ready(warp)
        unit.ready.remove(warp)
        unit.push_sleeper(warp, cycle=100)  # 30 cycles out: far
        assert unit.sleeper_flags(100) == (True, False)
        assert unit.sleeper_flags(109) == (True, False)   # wake-cycle = 21
        assert unit.sleeper_flags(110) == (False, True)   # wake-cycle = 20
        assert unit.sleeper_flags(129) == (False, True)

    def test_dispose_issued_routes_by_status(self):
        unit = SchedulerWakeQueue(sched=None)
        ready_w, sleeper_w, barrier_w, acquire_w = (
            self._warp(i) for i in range(4)
        )
        for w in (ready_w, sleeper_w, barrier_w, acquire_w):
            unit.add_ready(w)
        sleeper_w.wake_cycle = 50  # eager-retry backoff
        barrier_w.status = WarpStatus.AT_BARRIER
        acquire_w.status = WarpStatus.WAITING_ACQUIRE
        for w in (ready_w, sleeper_w, barrier_w, acquire_w):
            unit.dispose_issued(w, cycle=10)
            unit.dispose_issued(w, cycle=10)  # idempotent second call
        assert unit.ready == [ready_w]
        assert sleeper_w.qstate == QS_SLEEPING
        assert barrier_w.qstate == QS_BARRIER
        assert acquire_w.qstate == QS_ACQUIRE
        assert unit.barrier_count == 1 and unit.acquire_count == 1
        assert unit.sleeping_warps() == 1
        unit.check_hygiene()


class TestColumnarViews:
    """Unit coverage for the columnar store's own hazards: slot
    recycling across CTA waves, view detach semantics, the qstate/
    status mask invariants while CTAs retire mid-run, and the bulk-read
    paths (probe histogram, SRP occupancy export) agreeing with the
    object walks they replaced."""

    def _core(self):
        from repro.sim.columnar import ColumnarCore
        from repro.sim.scheduler import GtoScheduler

        return ColumnarCore([GtoScheduler(0)], _config())

    def test_slot_recycling_resets_every_column(self):
        from repro.sim.columnar import SL_NONE, ST_READY

        core = self._core()
        kernel = straightline_kernel()
        slot = 3
        first = core.new_warp(0, 0, kernel, DeterministicRng(1), slot=slot)
        # Dirty every column the next tenant could observe.
        first.pc = 5
        first.wake_cycle = 99
        first.dynamic_instructions = 7
        first.stalled_on = "memory"
        first.holds_extended_set = True
        core.sb_rows[slot][0] = 500
        core.sb_max[slot] = 500
        first.finish()
        core.release_warp(first)
        assert core.wid[slot] == -1
        assert core.qstate[slot] == QS_OUT
        assert 0 not in core.wid2slot

        second = core.new_warp(9, 1, kernel, DeterministicRng(2), slot=slot)
        assert core.wid[slot] == 9 and core.wid2slot[9] == slot
        assert core.pc[slot] == 0 and core.wake[slot] == 0
        assert core.dyn[slot] == 0
        assert core.status[slot] == ST_READY
        assert core.stall[slot] == SL_NONE
        assert core.holds[slot] is False
        # The previous tenant's pending writes must not leak through.
        assert core.sb_max[slot] == 0
        assert all(ready == 0 for ready in core.sb_rows[slot])
        assert second.pc == 0 and second.status is WarpStatus.READY
        core.check_hygiene()

    def test_detached_view_keeps_final_state(self):
        """release_warp must freeze the view at its final column values:
        a retired CTA's warps stay readable (diagnostics, stats) without
        aliasing the slot's next tenant."""
        core = self._core()
        kernel = straightline_kernel()
        first = core.new_warp(0, 0, kernel, DeterministicRng(1), slot=0)
        first.pc = 5
        first.wake_cycle = 99
        first.dynamic_instructions = 7
        first.holds_extended_set = True
        first.finish()
        core.release_warp(first)

        second = core.new_warp(9, 1, kernel, DeterministicRng(2), slot=0)
        second.pc = 2
        second.wake_cycle = 11
        assert first.pc == 5
        assert first.wake_cycle == 99
        assert first.dynamic_instructions == 8  # finish() counts the EXIT
        assert first.status is WarpStatus.FINISHED
        assert first.holds_extended_set is True
        assert second.pc == 2 and second.wake_cycle == 11

    def test_mask_invariants_hold_across_cta_retires(self):
        """Step a multi-wave run one cycle at a time, checking the
        column invariants after every cycle: freed slots must read
        ``wid == -1`` / ``QS_OUT`` the moment their CTA retires, and
        recycled slots must host their new tenant cleanly.  Also pins
        single-step == batched-run identity for the columnar engine."""
        kernel = _random_kernel(0)
        config = dataclasses.replace(_config(), issue_engine="columnar")
        sm = _make_sm(kernel, config, SmTechniqueState,
                      ctas_resident=2, total_ctas=5)
        core = sm._columnar
        tenants: dict[int, set[int]] = {}
        while not sm.done:
            issued = sm.step()
            for slot in range(core.capacity):
                wid = core.wid[slot]
                if wid >= 0:
                    tenants.setdefault(slot, set()).add(wid)
            core.check_hygiene()
            if issued == 0 and not sm.done:
                sm._fast_forward()
            assert sm.cycle < 200_000, "stepped run diverged"
        assert any(len(wids) >= 2 for wids in tenants.values()), (
            "no slot was ever recycled — the scenario lost its teeth"
        )
        _assert_columnar_drained(sm)
        sm.stats.cycles = sm.cycle  # run()'s epilogue, by hand
        batched = _run_sm(kernel, config, SmTechniqueState,
                          ctas_resident=2, total_ctas=5)
        assert _outcome(sm) == _outcome(batched)

    def test_probe_counts_matches_object_walk(self):
        """The probes' vectorized histogram must count exactly what the
        per-warp object walk counted, at every sampled cycle of a run
        with barriers, retires, and live-register churn."""
        kernel = _random_kernel(1)
        config = dataclasses.replace(_config(), issue_engine="columnar")
        sm = _make_sm(kernel, config, SmTechniqueState,
                      ctas_resident=2, total_ctas=5)
        core = sm._columnar
        checked = 0
        while not sm.done:
            issued = sm.step()
            expected = [0, 0, 0, 0, 0, 0]
            for cta in sm.resident_ctas:
                for w in cta.warps:
                    status = w.status
                    if status is WarpStatus.FINISHED:
                        continue
                    expected[3] += 1
                    if status is WarpStatus.READY:
                        expected[0] += 1
                    elif status is WarpStatus.AT_BARRIER:
                        expected[1] += 1
                    elif status is WarpStatus.WAITING_ACQUIRE:
                        expected[2] += 1
                    md = w.kernel.metadata
                    expected[5] += md.base_set_size or md.regs_per_thread
                    if w.holds_extended_set:
                        expected[4] += 1
                        expected[5] += md.extended_set_size or 0
            assert core.probe_counts() == tuple(expected)
            checked += 1
            if issued == 0 and not sm.done:
                sm._fast_forward()
            assert sm.cycle < 200_000, "stepped run diverged"
        assert checked > 0

    def test_srp_occupancy_columns_track_acquire_release(self):
        from repro.regmutex.srp import SharedRegisterPool

        srp = SharedRegisterPool(max_warps=8, num_sections=2)
        cols = srp.occupancy_columns()
        assert not any(cols["holds"])
        assert all(entry == -1 for entry in cols["section"])
        # Unaddressable sections (beyond num_sections) are born taken.
        assert list(cols["taken"]) == [False] * 2 + [True] * 6

        section = srp.acquire(3)
        cols = srp.occupancy_columns()
        assert [bool(h) for h in cols["holds"]] == [
            slot == 3 for slot in range(8)
        ]
        assert cols["section"][3] == section
        assert cols["taken"][section]

        srp.release(3)
        cols = srp.occupancy_columns()
        assert not any(cols["holds"])
        assert not any(cols["taken"][:2])
