"""Integration tests for the SM pipeline on small kernels."""

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from tests.conftest import looped_kernel, straightline_kernel


def _run(kernel, config, ctas_resident=1, total_ctas=1, technique_state=None):
    stats = SmStats()
    state = technique_state or SmTechniqueState(kernel, config, stats)
    sm = StreamingMultiprocessor(
        sm_id=0,
        config=config,
        kernel=kernel,
        technique_state=state,
        ctas_resident_limit=ctas_resident,
        total_ctas=total_ctas,
        rng=DeterministicRng(1),
        stats=stats,
    )
    return sm.run(), sm


class TestBasicExecution:
    def test_straightline_completes(self, tiny_config):
        kernel = straightline_kernel()
        stats, sm = _run(kernel, tiny_config)
        assert sm.done
        warps_per_cta = (kernel.metadata.threads_per_cta + 31) // 32
        assert stats.instructions_issued == len(kernel) * warps_per_cta

    def test_loop_executes_dynamic_instructions(self, tiny_config):
        kernel = looped_kernel(trips=4, body=6)
        stats, _ = _run(kernel, tiny_config)
        warps_per_cta = (kernel.metadata.threads_per_cta + 31) // 32
        from repro.liveness.pressure import dynamic_pressure_trace
        # Each warp follows the single-thread dynamic path exactly.
        expected = dynamic_pressure_trace(kernel).instructions_executed
        assert stats.instructions_issued == expected * warps_per_cta

    def test_alu_latency_respected(self, tiny_config):
        """A dependent ALU chain cannot finish faster than chain length x
        latency."""
        b = KernelBuilder(regs_per_thread=2, threads_per_cta=32)
        b.ldc(0)
        for _ in range(10):
            b.alu(0, 0, 0)  # strict dependence chain
        b.exit()
        stats, _ = _run(b.build(), tiny_config)
        assert stats.cycles >= 10 * 4  # IADD latency is 4

    def test_memory_latency_respected(self, tiny_config):
        b = KernelBuilder(regs_per_thread=2, threads_per_cta=32)
        b.ldc(0)
        b.load(1, 0)
        b.alu(0, 1, 1)  # depends on the load
        b.exit()
        stats, _ = _run(b.build(), tiny_config)
        assert stats.cycles >= tiny_config.l1_hit_latency

    def test_more_warps_hide_latency(self, tiny_config):
        """The core premise: throughput per warp improves with occupancy
        on a latency-bound kernel."""
        b = KernelBuilder(regs_per_thread=3, threads_per_cta=32)
        b.ldc(0)
        for _ in range(12):
            b.load(1, 0)
            b.alu(0, 1, 0)
        b.exit()
        kernel = b.build()
        stats_1, _ = _run(kernel, tiny_config, ctas_resident=1, total_ctas=4)
        stats_4, _ = _run(kernel, tiny_config, ctas_resident=4, total_ctas=4)
        assert stats_4.cycles < stats_1.cycles

    def test_barrier_synchronizes_cta(self, tiny_config):
        b = KernelBuilder(regs_per_thread=2, threads_per_cta=128)  # 4 warps
        b.ldc(0)
        b.barrier()
        b.alu(1, 0)
        b.exit()
        stats, _ = _run(b.build(), tiny_config)
        assert stats.instructions_issued == 4 * 4

    def test_cta_refill(self, tiny_config):
        kernel = straightline_kernel()
        stats, _ = _run(kernel, tiny_config, ctas_resident=1, total_ctas=3)
        assert stats.ctas_launched == 3

    def test_zero_resident_rejected(self, tiny_config):
        kernel = straightline_kernel()
        with pytest.raises(ValueError, match="zero CTAs"):
            _run(kernel, tiny_config, ctas_resident=0, total_ctas=1)

    def test_deterministic_across_runs(self, tiny_config):
        kernel = looped_kernel(trips=3)
        s1, _ = _run(kernel, tiny_config, ctas_resident=2, total_ctas=4)
        s2, _ = _run(kernel, tiny_config, ctas_resident=2, total_ctas=4)
        assert s1.cycles == s2.cycles
        assert s1.instructions_issued == s2.instructions_issued


class TestStallAccounting:
    def test_memory_stalls_attributed(self, tiny_config):
        b = KernelBuilder(regs_per_thread=2, threads_per_cta=32)
        b.ldc(0)
        b.load(1, 0)
        b.alu(0, 1, 1)
        b.exit()
        stats, _ = _run(b.build(), tiny_config)
        assert stats.stall_memory > 0

    def test_resident_warp_cycles_tracked(self, tiny_config):
        kernel = straightline_kernel()
        stats, _ = _run(kernel, tiny_config)
        assert stats.resident_warp_cycles > 0
        assert stats.achieved_occupancy(tiny_config.max_warps_per_sm) <= 1.0


class TestFastForward:
    def test_fast_forward_preserves_results(self, tiny_config):
        """Cycle counts must match a no-skip run exactly (the skip only
        jumps over provably idle cycles)."""
        b = KernelBuilder(regs_per_thread=2, threads_per_cta=32)
        b.ldc(0)
        for _ in range(5):
            b.load(1, 0)
            b.alu(0, 1, 1)
        b.exit()
        kernel = b.build()
        stats_ff, _ = _run(kernel, tiny_config)

        # Re-run with fast-forward disabled by stepping manually.
        from repro.sim.stats import SmStats as _Stats
        stats2 = _Stats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=tiny_config, kernel=kernel,
            technique_state=SmTechniqueState(kernel, tiny_config, stats2),
            ctas_resident_limit=1, total_ctas=1,
            rng=DeterministicRng(1), stats=stats2,
        )
        while not sm.done:
            sm.step()
        assert sm.cycle == stats_ff.cycles

    def test_deadlock_detected(self, tiny_config):
        """A warp parked on an acquire that can never be granted must be
        reported as a deadlock, not an infinite loop."""
        from repro.regmutex.issue_logic import RegMutexSmState

        b = KernelBuilder(regs_per_thread=2, threads_per_cta=32)
        b.ldc(0)
        b.acquire()
        b.exit()
        kernel = b.build()
        stats = SmStats()
        state = RegMutexSmState(kernel, tiny_config, stats, num_sections=0)
        sm = StreamingMultiprocessor(
            sm_id=0, config=tiny_config, kernel=kernel,
            technique_state=state, ctas_resident_limit=1, total_ctas=1,
            rng=DeterministicRng(1), stats=stats,
        )
        with pytest.raises(RuntimeError, match="deadlock"):
            sm.run()


class TestIssueWidth:
    def test_dual_issue_speeds_up_ilp_kernel(self, tiny_config):
        """issue_width_per_scheduler=2 lets one scheduler issue two
        independent instructions per cycle (Kepler-style dual issue)."""
        import dataclasses
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(8):
            b.ldc(r)
        for i in range(40):
            b.alu(i % 4, 4 + i % 4, 4 + (i + 1) % 4)  # independent ALUs
        b.store(0, 0)
        b.exit()
        kernel = b.build()
        single, _ = _run(kernel, tiny_config, ctas_resident=2, total_ctas=2)
        wide_cfg = dataclasses.replace(tiny_config, issue_width_per_scheduler=2)
        dual, _ = _run(kernel, wide_cfg, ctas_resident=2, total_ctas=2)
        assert dual.cycles < single.cycles
        assert dual.instructions_issued == single.instructions_issued

    def test_width_one_unchanged(self, tiny_config):
        """The width loop must not perturb single-issue timing."""
        kernel = looped_kernel(trips=3)
        a, _ = _run(kernel, tiny_config, ctas_resident=2, total_ctas=4)
        b, _ = _run(kernel, tiny_config, ctas_resident=2, total_ctas=4)
        assert a.cycles == b.cycles


class TestWarpSlotAllocation:
    """Regression for SM-local warp slots (banked RF / SRP-LUT index).

    Using ``warp_id % max_warps_per_sm`` directly aliased two resident
    warps onto one slot once CTA rotation pushed warp ids past the slot
    count.  Slots are now allocated (identity-preferred, lowest-free on
    collision) and recycled at CTA retirement.
    """

    def _sm(self, config, ctas_resident=1, total_ctas=1):
        kernel = straightline_kernel()
        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel,
            technique_state=SmTechniqueState(kernel, config, stats),
            ctas_resident_limit=ctas_resident, total_ctas=total_ctas,
            rng=DeterministicRng(1), stats=stats,
        )
        return sm

    def test_fresh_sm_assigns_identity_slots(self, tiny_config):
        sm = self._sm(tiny_config, ctas_resident=2, total_ctas=2)
        warps = [w for cta in sm.resident_ctas for w in cta.warps]
        assert [w.slot for w in warps] == [w.warp_id for w in warps]

    def test_collision_falls_back_to_lowest_free(self, tiny_config):
        sm = self._sm(tiny_config, ctas_resident=1, total_ctas=1)
        assert sm._occupied_slots == {0, 1}  # one 64-thread CTA resident
        # warp_id 8 prefers slot 8 % 8 = 0 (taken) -> lowest free is 2.
        assert sm._allocate_slot(8) == 2
        assert 2 in sm._occupied_slots

    def test_cta_rotation_keeps_slots_distinct_and_bounded(self, tiny_config):
        """Drive warp ids well past the slot count and check, every
        cycle, that live slots are distinct, in range, and mirrored by
        the accounting set."""
        sm = self._sm(tiny_config, ctas_resident=4, total_ctas=12)
        saw_high_warp_id = False
        while not sm.done:
            sm.step()
            warps = [w for cta in sm.resident_ctas for w in cta.warps]
            slots = [w.slot for w in warps]
            assert len(set(slots)) == len(slots), f"slot aliasing: {slots}"
            assert all(
                0 <= s < tiny_config.max_warps_per_sm for s in slots
            )
            assert set(slots) == sm._occupied_slots
            saw_high_warp_id |= any(
                w.warp_id >= tiny_config.max_warps_per_sm for w in warps
            )
        assert saw_high_warp_id  # the scenario actually exercised the bug
        assert sm._occupied_slots == set()
