"""Tests for the memory latency model."""

import pytest

from repro.arch.config import fermi_like
from repro.sim.memory import MemoryModel
from repro.sim.rand import DeterministicRng


def _model(hit_rate=0.5, max_in_flight=4, dram=400, l1=28):
    cfg = fermi_like(l1_hit_rate=hit_rate, dram_latency=dram, l1_hit_latency=l1)
    return MemoryModel(cfg, DeterministicRng(1), max_in_flight=max_in_flight)


class TestMemoryModel:
    def test_load_latency_is_hit_or_miss(self):
        m = _model()
        for _ in range(50):
            if not m.can_accept():
                m.retire(10_000)
            done = m.issue_load(cycle=0)
            assert done in (28, 400)

    def test_all_hits_at_rate_one(self):
        m = _model(hit_rate=1.0, max_in_flight=128)
        for _ in range(50):
            assert m.issue_load(0) == 28
        assert m.l1_hit_rate_observed == 1.0

    def test_all_misses_at_rate_zero(self):
        m = _model(hit_rate=0.0, max_in_flight=128)
        for _ in range(50):
            assert m.issue_load(0) == 400
        assert m.l1_hit_rate_observed == 0.0

    def test_in_flight_cap_enforced(self):
        m = _model(max_in_flight=2)
        m.issue_load(0)
        m.issue_load(0)
        assert not m.can_accept()
        with pytest.raises(RuntimeError, match="saturated"):
            m.issue_load(0)

    def test_retire_frees_slots(self):
        m = _model(max_in_flight=2)
        m.issue_load(0)
        m.issue_load(0)
        m.retire(500)  # past both latencies
        assert m.can_accept()
        assert m.in_flight == 0

    def test_retire_only_completed(self):
        m = _model(hit_rate=1.0, max_in_flight=8)
        m.issue_load(0)    # done at 28
        m.issue_load(20)   # done at 48
        m.retire(30)
        assert m.in_flight == 1

    def test_shared_loads_bypass_window(self):
        m = _model(max_in_flight=1)
        m.issue_load(0)
        assert not m.can_accept()
        done = m.issue_load(0, shared=True)  # still allowed
        assert done < 28  # short fixed latency

    def test_earliest_completion(self):
        m = _model(hit_rate=1.0, max_in_flight=8)
        assert m.earliest_completion(0) is None
        m.issue_load(0)
        m.issue_load(10)
        assert m.earliest_completion(0) == 28
        assert m.earliest_completion(28) == 38

    def test_earliest_completion_fast_path_matches_scan(self):
        """The cached ``_next_retire`` answer must equal the reference
        scan at every point of a retire-at-cycle-start lifecycle."""
        m = _model(hit_rate=0.5, max_in_flight=32)
        cycle = 0
        for step in range(60):
            cycle += 7
            m.retire(cycle)  # SM order: retire first, then ask
            if m.can_accept() and step % 2 == 0:
                m.issue_load(cycle)
            assert m.earliest_completion(cycle) == \
                m._earliest_completion_scan(cycle)

    def test_earliest_completion_stale_cache_falls_back(self):
        """A caller that skipped retire() sees a stale ``<= cycle``
        cached minimum; the fast path must fall back to the scan, not
        report a completion in the past."""
        m = _model(hit_rate=1.0, max_in_flight=8, l1=28)
        m.issue_load(0)    # done at 28
        m.issue_load(50)   # done at 78
        # No retire: at cycle 40 the cached _next_retire (28) is stale.
        assert m._next_retire == 28
        assert m.earliest_completion(40) == 78
        assert m.earliest_completion(40) == m._earliest_completion_scan(40)
        assert m.earliest_completion(100) is None

    def test_observed_hit_rate_converges(self):
        m = _model(hit_rate=0.5, max_in_flight=10_000)
        for _ in range(4000):
            m.issue_load(0)
        assert 0.45 < m.l1_hit_rate_observed < 0.55

    def test_default_cap_from_config(self):
        cfg = fermi_like(max_in_flight_loads=3)
        m = MemoryModel(cfg, DeterministicRng(0))
        for _ in range(3):
            m.issue_load(0)
        assert not m.can_accept()
