"""Tests for GTO and LRR warp schedulers."""

import pytest

from repro.sim.rand import DeterministicRng
from repro.sim.scheduler import GtoScheduler, LrrScheduler, make_scheduler
from repro.sim.warp import Warp
from tests.conftest import straightline_kernel


def _warps(n):
    kernel = straightline_kernel()
    return [Warp(i, 0, kernel, DeterministicRng(i)) for i in range(n)]


class TestGto:
    def test_picks_oldest_initially(self):
        sched = GtoScheduler(0)
        warps = _warps(4)
        assert sched.pick([warps[2], warps[1], warps[3]]) is warps[1]

    def test_greedy_sticks_to_last_issued(self):
        sched = GtoScheduler(0)
        warps = _warps(4)
        sched.notify_issued(warps[2])
        assert sched.pick(warps) is warps[2]

    def test_falls_back_to_oldest_when_greedy_stalls(self):
        sched = GtoScheduler(0)
        warps = _warps(4)
        sched.notify_issued(warps[2])
        # warps[2] not in candidates: stalled
        assert sched.pick([warps[3], warps[1]]) is warps[1]

    def test_empty_candidates(self):
        assert GtoScheduler(0).pick([]) is None

    def test_removed_greedy_forgotten(self):
        sched = GtoScheduler(0)
        warps = _warps(3)
        sched.notify_issued(warps[2])
        sched.notify_removed(warps[2])
        assert sched.pick(warps) is warps[0]

    def test_priority_hook_outranks_greedy(self):
        """OWF's owner-first: priority 0 warps outrank the greedy warp."""
        warps = _warps(4)
        warps[3].owns_pair_lock = True
        sched = GtoScheduler(0, priority=lambda w: 0 if w.owns_pair_lock else 1)
        sched.notify_issued(warps[0])
        assert sched.pick(warps) is warps[3]

    def test_priority_ties_use_greedy_then_oldest(self):
        warps = _warps(4)
        sched = GtoScheduler(0, priority=lambda w: 0)
        sched.notify_issued(warps[1])
        assert sched.pick(warps) is warps[1]
        assert sched.pick([warps[2], warps[3]]) is warps[2]

    def test_priority_hook_called_once_per_candidate(self):
        """The hook runs exactly once per candidate per pick — it used
        to run inside both a min() and a list comprehension (2N calls),
        and hooks are user-supplied so extra calls are observable."""
        calls = []
        warps = _warps(5)
        warps[2].owns_pair_lock = True

        def hook(w):
            calls.append(w.warp_id)
            return 0 if w.owns_pair_lock else 1

        sched = GtoScheduler(0, priority=hook)
        assert sched.pick(warps) is warps[2]
        assert sorted(calls) == [0, 1, 2, 3, 4]

    def test_priority_single_pass_matches_owf_semantics(self):
        """Single-pass top-tier selection: lowest priority wins, ties
        break greedy-then-oldest — same answers as the old two-pass."""
        warps = _warps(6)
        prio = {0: 2, 1: 1, 2: 1, 3: 2, 4: 1, 5: 3}
        sched = GtoScheduler(0, priority=lambda w: prio[w.warp_id])
        assert sched.pick(warps) is warps[1]      # oldest of the 1-tier
        sched.notify_issued(warps[4])
        assert sched.pick(warps) is warps[4]      # greedy within tier
        assert sched.pick([warps[0], warps[3], warps[5]]) is warps[0]


class TestLrr:
    def test_round_robin_order(self):
        sched = LrrScheduler(0)
        warps = _warps(3)
        first = sched.pick(warps)
        sched.notify_issued(first)
        second = sched.pick(warps)
        sched.notify_issued(second)
        third = sched.pick(warps)
        sched.notify_issued(third)
        wrap = sched.pick(warps)
        assert [w.warp_id for w in (first, second, third, wrap)] == [0, 1, 2, 0]

    def test_skips_missing_candidates(self):
        sched = LrrScheduler(0)
        warps = _warps(4)
        sched.notify_issued(warps[1])
        assert sched.pick([warps[0], warps[3]]) is warps[3]

    def test_empty(self):
        assert LrrScheduler(0).pick([]) is None

    def test_rotation_over_id_ordered_candidates(self):
        """Sort-free pick: with the (now documented) id-ascending
        candidate precondition, rotation must still visit every warp in
        round-robin order across picks, including wrap-around."""
        sched = LrrScheduler(0)
        warps = _warps(5)
        order = []
        for _ in range(10):
            chosen = sched.pick(warps)
            order.append(chosen.warp_id)
            sched.notify_issued(chosen)
        assert order == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4]

    def test_wraps_when_last_issued_is_max_id(self):
        sched = LrrScheduler(0)
        warps = _warps(4)
        sched.notify_issued(warps[3])
        assert sched.pick(warps) is warps[0]

    def test_rotation_with_gaps(self):
        """Stalled warps vanish from candidates; rotation continues from
        the next higher id that is present."""
        sched = LrrScheduler(0)
        warps = _warps(6)
        sched.notify_issued(warps[2])
        assert sched.pick([warps[0], warps[4], warps[5]]) is warps[4]
        sched.notify_issued(warps[4])
        assert sched.pick([warps[0], warps[1]]) is warps[0]


class TestFactory:
    def test_gto(self):
        assert isinstance(make_scheduler("gto", 0), GtoScheduler)

    def test_lrr(self):
        assert isinstance(make_scheduler("lrr", 0), LrrScheduler)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo", 0)

    def test_lrr_rejects_priority(self):
        with pytest.raises(ValueError):
            make_scheduler("lrr", 0, priority=lambda w: 0)
