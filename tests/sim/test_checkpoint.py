"""Checkpoint/resume: bit-identity and the typed failure taxonomy.

The checkpoint contract mirrors the issue-engine contract in
``test_wakequeue``: resuming a freshly constructed SM from any
checkpoint emitted by ``run()`` must produce the *bit-identical* tail —
same final cycle and same ``SmStats`` down to each stall counter — as
the uninterrupted run, on all three issue engines, for any technique
and scheduler policy.

Checkpoints here always come from ``run(checkpoint_interval=...,
checkpoint_sink=...)`` — the product path — never from stepping an SM
to a cut cycle.  Per-cycle stepping and ``run()``'s fast-forward
attribute stall cycles differently (documented step-vs-run asymmetry),
so a step-to-cut harness would flag attribution skew that no resumed
run can ever observe.

The taxonomy half pins the acceptance rule "classified, never silently
resumed": wrong schema, wrong engine, wrong kernel/config, and damaged
files each raise their own typed error, and none of them is a
``SimulationError``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.arch.config import fermi_like
from repro.errors import (
    CheckpointCorruptError,
    CheckpointEngineMismatchError,
    CheckpointError,
    CheckpointSchemaError,
    SimulationError,
)
from repro.harness.spec import _TECHNIQUES
from repro.sim.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    checkpoint_path,
    read_checkpoint,
    write_checkpoint,
)
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from tests.sim.test_wakequeue import _acquire_kernel, _random_kernel

ENGINES = ("scan", "event", "columnar", "native")

# One representative scheduler per technique keeps the matrix affordable;
# the /tmp-era exhaustive sweep (4 engines x 2 schedulers x 5 techniques)
# passed and the cross products not pinned here add no new code paths.
TECHNIQUE_SCHED = (
    ("baseline", "gto"),
    ("regmutex", "lrr"),
    ("regmutex-paired", "gto"),
    ("owf", "gto"),
    ("rfv", "lrr"),
)


def _make_sm(kernel, technique_kind, engine, sched, seed=7, total=6):
    """A fresh SM exactly as ``Gpu.launch`` would build it."""
    config = fermi_like(num_sms=1, issue_engine=engine, scheduler_policy=sched)
    factory, prio_hook = _TECHNIQUES[technique_kind]
    technique = factory()
    try:
        compiled = technique.prepare_kernel(kernel, config)
    except ValueError:
        compiled = kernel  # pre-instrumented acquire kernel
    occ = technique.occupancy(compiled, config)
    stats = SmStats()
    state = technique.make_sm_state(compiled, config, stats)
    prio = prio_hook if (prio_hook and sched == "gto") else None
    return StreamingMultiprocessor(
        sm_id=0, config=config, kernel=compiled, technique_state=state,
        ctas_resident_limit=occ.ctas_per_sm, total_ctas=total,
        rng=DeterministicRng(seed * 1_000_003 + total),
        scheduler_priority=prio, stats=stats,
    )


def _outcome(sm):
    return (sm.cycle, dataclasses.asdict(sm.stats))


def _checkpointed_run(kernel, technique_kind, engine, sched):
    """Reference outcome plus the checkpoints run() emitted along the way.

    Emission is best-effort periodic (a long fast-forward can skip
    windows), so a short run may yield a single checkpoint; the contract
    is at least one, and that emitting them is invisible to the result.
    """
    probe = _make_sm(kernel, technique_kind, engine, sched)
    probe.run()
    interval = max(5, probe.cycle // 4)

    checkpoints = []
    ref = _make_sm(kernel, technique_kind, engine, sched)
    ref.run(checkpoint_interval=interval, checkpoint_sink=checkpoints.append)
    assert _outcome(ref) == _outcome(probe), (
        "emitting checkpoints perturbed the run"
    )
    assert checkpoints, "run() emitted no checkpoints"
    return _outcome(ref), checkpoints


def _assert_resumes(kernel, technique_kind, engine, sched):
    ref_out, checkpoints = _checkpointed_run(
        kernel, technique_kind, engine, sched
    )
    picks = [checkpoints[0]]
    if len(checkpoints) > 1:
        picks.append(checkpoints[-1])
    for payload in picks:
        # Round-trip through JSON text: proves the payload is pure data,
        # exactly what a checkpoint file on disk would hand back.
        payload = json.loads(json.dumps(payload))
        resumed = _make_sm(kernel, technique_kind, engine, sched)
        resumed.restore_checkpoint(payload)
        assert resumed.cycle == payload["cycle"]
        resumed.run()
        assert _outcome(resumed) == ref_out, (
            f"resume from cycle {payload['cycle']} diverged"
        )


class TestRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("technique_kind,sched", TECHNIQUE_SCHED)
    def test_resume_is_bit_identical(self, engine, technique_kind, sched):
        _assert_resumes(_random_kernel(3), technique_kind, engine, sched)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "technique_kind", ("regmutex", "regmutex-paired")
    )
    def test_srp_state_survives_resume(self, engine, technique_kind):
        # The acquire kernel parks warps on the SRP mid-run: bitmask,
        # LUT, holder flags, and pair locks all cross the checkpoint.
        _assert_resumes(_acquire_kernel(), technique_kind, engine, "gto")

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_kernels_resume(self, seed):
        # Property sweep in the style of test_wakequeue: random kernels,
        # engines and techniques rotated by seed.
        engine = ENGINES[seed % len(ENGINES)]
        technique_kind, sched = TECHNIQUE_SCHED[seed % len(TECHNIQUE_SCHED)]
        _assert_resumes(_random_kernel(100 + seed), technique_kind,
                        engine, sched)


@pytest.fixture(scope="module")
def scan_checkpoint():
    """One real checkpoint payload (scan engine, baseline, GTO)."""
    _, checkpoints = _checkpointed_run(
        _random_kernel(3), "baseline", "scan", "gto"
    )
    return checkpoints[0]


class TestFailureTaxonomy:
    def test_schema_bump_is_typed_error(self, scan_checkpoint):
        payload = json.loads(json.dumps(scan_checkpoint))
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        sm = _make_sm(_random_kernel(3), "baseline", "scan", "gto")
        with pytest.raises(CheckpointSchemaError) as ei:
            sm.restore_checkpoint(payload)
        assert ei.value.kind == "checkpoint-schema"

    def test_engine_mismatch_is_typed_error(self, scan_checkpoint):
        sm = _make_sm(_random_kernel(3), "baseline", "event", "gto")
        with pytest.raises(CheckpointEngineMismatchError) as ei:
            sm.restore_checkpoint(json.loads(json.dumps(scan_checkpoint)))
        assert ei.value.kind == "checkpoint-engine-mismatch"

    def test_kernel_mismatch_refused(self, scan_checkpoint):
        sm = _make_sm(_random_kernel(4), "baseline", "scan", "gto")
        with pytest.raises(CheckpointError, match="kernel fingerprint"):
            sm.restore_checkpoint(json.loads(json.dumps(scan_checkpoint)))

    def test_untagged_payload_is_corrupt(self):
        sm = _make_sm(_random_kernel(3), "baseline", "scan", "gto")
        with pytest.raises(CheckpointCorruptError):
            sm.restore_checkpoint({"cycle": 40})

    def test_checkpoint_errors_are_not_simulation_errors(self):
        # A bad checkpoint says nothing about simulator determinism:
        # the harness must fall back to a fresh run, not quarantine
        # the simulation result.
        for exc_type in (
            CheckpointError, CheckpointSchemaError,
            CheckpointEngineMismatchError, CheckpointCorruptError,
        ):
            assert not issubclass(exc_type, SimulationError)


class TestFileFormat:
    def test_write_read_round_trip(self, scan_checkpoint, tmp_path):
        path = checkpoint_path(str(tmp_path), total_ctas=6)
        write_checkpoint(path, scan_checkpoint)
        assert read_checkpoint(path) == json.loads(
            json.dumps(scan_checkpoint)
        )

    def test_missing_file_is_corrupt_error(self, tmp_path):
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            read_checkpoint(str(tmp_path / "absent.ckpt.json"))

    def test_truncated_file_is_corrupt_error(self, scan_checkpoint, tmp_path):
        path = checkpoint_path(str(tmp_path), total_ctas=6)
        write_checkpoint(path, scan_checkpoint)
        from repro.faults.injector import corrupt_checkpoint_file

        corrupt_checkpoint_file(path, "checkpoint-truncate")
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(path)

    def test_bit_rot_fails_checksum(self, scan_checkpoint, tmp_path):
        path = checkpoint_path(str(tmp_path), total_ctas=6)
        write_checkpoint(path, scan_checkpoint)
        from repro.faults.injector import corrupt_checkpoint_file

        # Bumps the payload's cycle but leaves the checksum stale.
        corrupt_checkpoint_file(path, "checkpoint-corrupt")
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(path)
