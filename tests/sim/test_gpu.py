"""Tests for the whole-device launcher."""

import pytest

from repro.arch.config import fermi_like
from repro.sim.gpu import Gpu, simulate_kernel
from repro.sim.technique import BaselineTechnique
from tests.conftest import looped_kernel, straightline_kernel


def memory_kernel(n=10):
    from repro.isa.builder import KernelBuilder
    b = KernelBuilder(regs_per_thread=3, threads_per_cta=64)
    b.ldc(0)
    for _ in range(n):
        b.load(1, 0)
        b.alu(0, 1, 0)
    b.store(0, 0)
    b.exit()
    return b.build()


@pytest.fixture
def small_gpu_config():
    return fermi_like(
        name="small",
        num_sms=3,
        max_warps_per_sm=8,
        max_ctas_per_sm=4,
        max_threads_per_sm=256,
        registers_per_sm=4096,
        dram_latency=60,
        l1_hit_latency=8,
    )


class TestGpuLaunch:
    def test_basic_launch(self, small_gpu_config):
        gpu = Gpu(small_gpu_config)
        result = gpu.launch(straightline_kernel(), grid_ctas=6)
        assert result.cycles > 0
        assert result.stats.technique == "baseline"
        assert len(result.stats.per_sm) == 3

    def test_zero_grid_rejected(self, small_gpu_config):
        with pytest.raises(ValueError):
            Gpu(small_gpu_config).launch(straightline_kernel(), grid_ctas=0)

    def test_unfittable_kernel_rejected(self, small_gpu_config):
        from repro.isa.builder import KernelBuilder
        b = KernelBuilder(regs_per_thread=63, threads_per_cta=256)
        b.ldc(0).exit()
        with pytest.raises(RuntimeError, match="does not fit"):
            Gpu(small_gpu_config).launch(b.build(), grid_ctas=3)

    def test_kernel_time_is_slowest_sm(self, small_gpu_config):
        gpu = Gpu(small_gpu_config)
        result = gpu.launch(looped_kernel(), grid_ctas=7)  # uneven split
        assert result.cycles == max(s.cycles for s in result.stats.per_sm)

    def test_equal_cta_counts_share_simulation(self, small_gpu_config):
        """SMs with equal CTA counts are bit-identical (memoized)."""
        gpu = Gpu(small_gpu_config)
        result = gpu.launch(looped_kernel(), grid_ctas=6)  # 2 CTAs per SM
        cycles = {s.cycles for s in result.stats.per_sm}
        assert len(cycles) == 1

    def test_deterministic_across_gpu_instances(self, small_gpu_config):
        r1 = Gpu(small_gpu_config, seed=5).launch(looped_kernel(), grid_ctas=6)
        r2 = Gpu(small_gpu_config, seed=5).launch(looped_kernel(), grid_ctas=6)
        assert r1.cycles == r2.cycles

    def test_seed_changes_timing(self, small_gpu_config):
        # Needs a memory-bound kernel: L1 hit/miss draws are the only
        # seed-dependent timing source.
        r1 = Gpu(small_gpu_config, seed=5).launch(memory_kernel(), grid_ctas=6)
        r2 = Gpu(small_gpu_config, seed=6).launch(memory_kernel(), grid_ctas=6)
        # L1 hit/miss draws differ; cycle counts should too (not guaranteed
        # in principle, but overwhelmingly likely for this workload).
        assert r1.cycles != r2.cycles

    def test_total_work_conserved(self, small_gpu_config):
        """Every CTA's warps execute; total instructions scale with grid."""
        kernel = straightline_kernel()
        warps_per_cta = (kernel.metadata.threads_per_cta + 31) // 32
        gpu = Gpu(small_gpu_config)
        result = gpu.launch(kernel, grid_ctas=6)
        assert result.stats.total.instructions_issued == (
            len(kernel) * warps_per_cta * 6
        )


class TestSimulateKernel:
    def test_default_grid_four_waves(self, small_gpu_config):
        kernel = straightline_kernel()
        result = simulate_kernel(kernel, small_gpu_config)
        from repro.arch.occupancy import theoretical_occupancy
        occ = theoretical_occupancy(small_gpu_config, kernel.metadata)
        expected = max(1, occ.ctas_per_sm) * small_gpu_config.num_sms * 4
        assert result.stats.total.ctas_launched == expected
