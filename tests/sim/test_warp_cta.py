"""Tests for warp state and CTA barrier protocol."""

import pytest

from repro.sim.cta import Cta
from repro.sim.rand import DeterministicRng
from repro.sim.warp import Warp, WarpStatus
from tests.conftest import looped_kernel, straightline_kernel


def _warp(kernel=None, wid=0, seed=0):
    return Warp(wid, 0, kernel or straightline_kernel(), DeterministicRng(seed))


class TestWarpControlFlow:
    def test_trip_count_loop(self):
        kernel = looped_kernel(trips=3)
        warp = _warp(kernel)
        branch_pc = next(
            pc for pc, i in enumerate(kernel) if i.is_conditional_branch
        )
        warp.pc = branch_pc
        inst = kernel[branch_pc]
        taken = []
        for _ in range(4):
            target = warp.resolve_branch_target(inst)
            taken.append(target == kernel.label_pc(inst.target))
        assert taken == [True, True, True, False]

    def test_trip_counter_rearms_after_falling_through(self):
        kernel = looped_kernel(trips=2)
        warp = _warp(kernel)
        branch_pc = next(
            pc for pc, i in enumerate(kernel) if i.is_conditional_branch
        )
        warp.pc = branch_pc
        inst = kernel[branch_pc]
        seq = [warp.resolve_branch_target(inst) == kernel.label_pc(inst.target)
               for _ in range(6)]
        assert seq == [True, True, False, True, True, False]

    def test_probability_zero_falls_through(self):
        from repro.isa.builder import KernelBuilder
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.label("t").branch("t", 0, taken_probability=0.0)
        b.exit()
        kernel = b.build()
        warp = _warp(kernel)
        warp.pc = 1
        assert warp.resolve_branch_target(kernel[1]) == 2

    def test_unannotated_branch_falls_through(self):
        from repro.isa.builder import KernelBuilder
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.label("t").branch("t", 0)
        b.exit()
        kernel = b.build()
        warp = _warp(kernel)
        warp.pc = 1
        assert warp.resolve_branch_target(kernel[1]) == 2

    def test_resolve_on_non_branch_rejected(self):
        warp = _warp()
        with pytest.raises(ValueError):
            warp.resolve_branch_target(warp.kernel[0])

    def test_finish(self):
        warp = _warp()
        warp.finish()
        assert warp.finished
        assert warp.status is WarpStatus.FINISHED


class TestCta:
    def _cta(self, n=4):
        kernel = straightline_kernel()
        warps = [Warp(i, 0, kernel, DeterministicRng(i)) for i in range(n)]
        return Cta(0, warps), warps

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cta(0, [])

    def test_barrier_holds_until_all_arrive(self):
        cta, warps = self._cta(3)
        assert not cta.arrive_at_barrier(warps[0])
        assert warps[0].status is WarpStatus.AT_BARRIER
        assert not cta.arrive_at_barrier(warps[1])
        assert cta.arrive_at_barrier(warps[2])
        for w in warps:
            assert w.status is WarpStatus.READY

    def test_finished_warps_excluded_from_barrier(self):
        cta, warps = self._cta(3)
        warps[2].finish()
        assert not cta.arrive_at_barrier(warps[0])
        assert cta.arrive_at_barrier(warps[1])  # releases with 2/2 live

    def test_barrier_reusable(self):
        cta, warps = self._cta(2)
        for _ in range(3):
            assert not cta.arrive_at_barrier(warps[0])
            assert cta.arrive_at_barrier(warps[1])

    def test_finished(self):
        cta, warps = self._cta(2)
        assert not cta.finished
        for w in warps:
            w.finish()
        assert cta.finished
