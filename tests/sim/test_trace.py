"""Tests for the cycle-trace recorder."""

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.trace import Trace, TraceEvent, TracingTechniqueState


@pytest.fixture
def config():
    return fermi_like(
        name="trace-test", num_sms=1, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


def _regmutex_kernel():
    b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
    for r in range(4):
        b.ldc(r)
    b.acquire()
    for r in range(4, 8):
        b.ldc(r)
    for r in range(4, 8):
        b.alu(0, 0, r)
    b.release()
    b.store(0, 0)
    b.exit()
    return b.build()


def _run_traced(config, kernel, sections=2, total_ctas=1):
    stats = SmStats()
    inner = RegMutexSmState(kernel, config, stats, num_sections=sections)
    traced = TracingTechniqueState(inner)
    sm = StreamingMultiprocessor(
        sm_id=0, config=config, kernel=kernel, technique_state=traced,
        ctas_resident_limit=2, total_ctas=total_ctas,
        rng=DeterministicRng(1), stats=stats,
    )
    sm.run()
    return traced.trace


class TestTrace:
    def test_issue_events_recorded(self, config):
        trace = _run_traced(config, _regmutex_kernel())
        issues = trace.of_kind("issue")
        # 2 warps x 16 instructions.
        assert len(issues) == 2 * 16

    def test_acquire_release_pairing(self, config):
        trace = _run_traced(config, _regmutex_kernel())
        assert len(trace.of_kind("acquire_ok")) == 2
        assert len(trace.of_kind("release")) == 2
        assert not trace.of_kind("acquire_blocked")  # 2 sections, 2 warps

    def test_contention_visible(self, config):
        trace = _run_traced(config, _regmutex_kernel(), sections=1)
        assert trace.of_kind("acquire_blocked")

    def test_hold_intervals_well_formed(self, config):
        trace = _run_traced(config, _regmutex_kernel(), sections=1)
        for warp_id in (0, 1):
            for start, end in trace.hold_intervals(warp_id):
                assert start <= end

    def test_holds_serialized_under_one_section(self, config):
        """With a single section, the two warps' hold intervals must not
        overlap — the mutual-exclusion property, observed end to end."""
        trace = _run_traced(config, _regmutex_kernel(), sections=1)
        (a_start, a_end), = trace.hold_intervals(0)
        (b_start, b_end), = trace.hold_intervals(1)
        assert a_end <= b_start or b_end <= a_start

    def test_warp_finish_events(self, config):
        trace = _run_traced(config, _regmutex_kernel())
        assert len(trace.of_kind("warp_finish")) == 2

    def test_events_cycle_ordered(self, config):
        trace = _run_traced(config, _regmutex_kernel())
        cycles = [e.cycle for e in trace.events]
        assert cycles == sorted(cycles)

    def test_for_warp_filters(self, config):
        trace = _run_traced(config, _regmutex_kernel())
        assert all(e.warp_id == 0 for e in trace.for_warp(0))

    def test_unreleased_hold_closes_at_finish(self, config):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
        b.ldc(0)
        b.acquire()
        b.ldc(5)
        b.alu(0, 5)
        b.exit()  # EXIT reclaims
        trace = _run_traced(config, b.build())
        intervals = trace.hold_intervals(0)
        assert len(intervals) == 1
        finish = trace.of_kind("warp_finish")[0]
        assert intervals[0][1] == finish.cycle
