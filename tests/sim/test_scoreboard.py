"""Tests for the register scoreboard."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.sim.scoreboard import Scoreboard


def _inst(dsts=(), srcs=()):
    return Instruction(Opcode.IADD, tuple(dsts), tuple(srcs))


class TestScoreboard:
    def test_clean_warp_can_issue(self):
        sb = Scoreboard()
        sb.register_warp(0)
        assert sb.can_issue(0, _inst((0,), (1,)), cycle=0)

    def test_raw_hazard_blocks(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=10)
        assert not sb.can_issue(0, _inst((2,), (1,)), cycle=5)
        assert sb.can_issue(0, _inst((2,), (1,)), cycle=10)

    def test_waw_hazard_blocks(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 3, ready_cycle=10)
        assert not sb.can_issue(0, _inst((3,), ()), cycle=5)

    def test_unrelated_register_not_blocked(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=10)
        assert sb.can_issue(0, _inst((2,), (3,)), cycle=5)

    def test_warps_isolated(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.register_warp(1)
        sb.record_write(0, 1, ready_cycle=10)
        assert sb.can_issue(1, _inst((2,), (1,)), cycle=5)

    def test_record_write_keeps_max(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=10)
        sb.record_write(0, 1, ready_cycle=5)  # must not shrink
        assert not sb.can_issue(0, _inst((), (1,)), cycle=7)

    def test_expire_drops_completed(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=5)
        sb.record_write(0, 2, ready_cycle=50)
        sb.expire(10)
        assert sb.pending_count(0, 10) == 1

    def test_ready_cycle(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=10)
        sb.record_write(0, 2, ready_cycle=20)
        inst = _inst((3,), (1, 2))
        assert sb.ready_cycle(0, inst, cycle=0) == 20
        assert sb.ready_cycle(0, _inst((4,), (5,)), cycle=3) == 3

    def test_earliest_ready(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.register_warp(1)
        assert sb.earliest_ready(0) is None
        sb.record_write(0, 1, ready_cycle=30)
        sb.record_write(1, 7, ready_cycle=12)
        assert sb.earliest_ready(0) == 12
        assert sb.earliest_ready(12) == 30

    def test_blocking_registers(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=10)
        assert sb.blocking_registers(0, _inst((1,), (2,)), 5) == [1]

    def test_has_pending_memory_heuristic(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=400)
        assert sb.has_pending_memory(0, cycle=0, horizon=20)
        sb2 = Scoreboard()
        sb2.register_warp(0)
        sb2.record_write(0, 1, ready_cycle=4)
        assert not sb2.has_pending_memory(0, cycle=0, horizon=20)

    def test_remove_warp(self):
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=100)
        sb.remove_warp(0)
        assert sb.earliest_ready(0) is None

    def test_earliest_ready_heap_matches_scan(self):
        """The completion min-heap must agree with the retained
        reference scan through a randomized record/expire/remove
        lifecycle with monotonically increasing query cycles (the
        stepper's access pattern — the heap prunes lazily, so queries
        never move backwards)."""
        import random

        rng = random.Random(42)
        sb = Scoreboard()
        for wid in range(6):
            sb.register_warp(wid)
        live = set(range(6))
        cycle = 0
        for _ in range(300):
            cycle += rng.randint(0, 5)
            roll = rng.random()
            if roll < 0.55 and live:
                wid = rng.choice(sorted(live))
                sb.record_write(wid, rng.randrange(8),
                                ready_cycle=cycle + rng.randint(1, 120))
            elif roll < 0.8:
                sb.expire(cycle)
            elif live:
                wid = rng.choice(sorted(live))
                sb.remove_warp(wid)
                live.discard(wid)
            assert sb.earliest_ready(cycle) == sb._earliest_ready_scan(cycle)

    def test_earliest_ready_ignores_superseded_entries(self):
        """record_write keeps the max ready_cycle per register; the heap
        holds both pushes but must report only the live (max) value."""
        sb = Scoreboard()
        sb.register_warp(0)
        sb.record_write(0, 1, ready_cycle=40)
        sb.record_write(0, 1, ready_cycle=90)  # supersedes: max wins
        assert sb.earliest_ready(0) == 90
        assert sb.earliest_ready(0) == sb._earliest_ready_scan(0)
