"""Tests for the parametric kernel generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.graph import build_cfg
from repro.cfg.loops import find_natural_loops
from repro.liveness.liveness import analyze_liveness
from repro.liveness.pressure import dynamic_pressure_trace
from repro.workloads.generator import (
    KernelShape,
    PressurePhase,
    generate_kernel,
)


def _shape(**overrides):
    defaults = dict(
        name="gen",
        phases=(
            PressurePhase(live_regs=6, length=20, mem_ratio=0.2),
            PressurePhase(live_regs=12, length=10),
            PressurePhase(live_regs=6, length=15, mem_ratio=0.2),
        ),
        regs_per_thread=12,
    )
    defaults.update(overrides)
    return KernelShape(**defaults)


class TestValidation:
    def test_peak_must_fit_declared_regs(self):
        with pytest.raises(ValueError, match="peak"):
            _shape(regs_per_thread=8)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            KernelShape(name="x", phases=(), regs_per_thread=8)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            PressurePhase(live_regs=1, length=5)
        with pytest.raises(ValueError):
            PressurePhase(live_regs=4, length=0)
        with pytest.raises(ValueError):
            PressurePhase(live_regs=4, length=5, mem_ratio=1.5)


class TestGeneration:
    def test_deterministic(self):
        k1, k2 = generate_kernel(_shape()), generate_kernel(_shape())
        assert k1.instructions == k2.instructions

    def test_seed_changes_code(self):
        k1 = generate_kernel(_shape(seed=1))
        k2 = generate_kernel(_shape(seed=2))
        assert k1.instructions != k2.instructions

    def test_terminates(self):
        trace = dynamic_pressure_trace(generate_kernel(_shape(outer_trips=3)))
        assert trace.pcs[-1] == generate_kernel(_shape(outer_trips=3)).exit_pcs()[0]

    def test_pressure_profile_matches_phases(self):
        kernel = generate_kernel(_shape())
        info = analyze_liveness(kernel)
        assert info.max_live() >= 10       # near the 12-reg peak
        assert min(info.live_count) <= 6   # dips to the low phases

    def test_loop_trips_produce_loop(self):
        shape = _shape(phases=(
            PressurePhase(live_regs=8, length=10, loop_trips=4),
        ), regs_per_thread=8)
        kernel = generate_kernel(shape)
        cfg = build_cfg(kernel)
        assert find_natural_loops(cfg)

    def test_outer_loop_repeats_phases(self):
        flat = generate_kernel(_shape(outer_trips=0))
        looped = generate_kernel(_shape(outer_trips=3))
        t_flat = dynamic_pressure_trace(flat)
        t_loop = dynamic_pressure_trace(looped)
        assert t_loop.instructions_executed > 2 * t_flat.instructions_executed

    def test_mem_ratio_controls_load_count(self):
        from repro.isa.instructions import OpClass
        lo = generate_kernel(_shape(phases=(
            PressurePhase(live_regs=8, length=100, mem_ratio=0.1),
        ), regs_per_thread=8))
        hi = generate_kernel(_shape(phases=(
            PressurePhase(live_regs=8, length=100, mem_ratio=0.4),
        ), regs_per_thread=8))
        n_lo = sum(1 for i in lo if i.op_class is OpClass.LOAD)
        n_hi = sum(1 for i in hi if i.op_class is OpClass.LOAD)
        assert n_hi > n_lo * 2

    def test_deterministic_load_placement_granularity(self):
        """round(ratio * length) loads exactly — the calibration contract."""
        from repro.isa.instructions import OpClass
        for ratio in (0.02, 0.05, 0.055, 0.1):
            shape = _shape(phases=(
                PressurePhase(live_regs=8, length=60, mem_ratio=ratio),
            ), regs_per_thread=8)
            kernel = generate_kernel(shape)
            # Count loads inside the phase body (exclude pressure-raising
            # definition loads, identified by their LDC/LD mix at the top).
            body_loads = sum(
                1 for i in kernel
                if i.op_class is OpClass.LOAD and i.dsts and i.srcs
            )
            assert body_loads >= round(ratio * 60)

    def test_scramble_indices_changes_assignment(self):
        plain = generate_kernel(_shape())
        scrambled = generate_kernel(_shape(scramble_indices=True))
        assert plain.instructions != scrambled.instructions
        # Same architected register count either way.
        assert (
            plain.metadata.regs_per_thread
            == scrambled.metadata.regs_per_thread
        )

    def test_divergent_phase_builds_diamond(self):
        from repro.cfg.graph import build_cfg
        kernel = generate_kernel(_shape(phases=(
            PressurePhase(live_regs=8, length=20, divergent=0.5),
        ), regs_per_thread=8))
        cfg = build_cfg(kernel)
        branches = [i for i in kernel if i.is_conditional_branch]
        assert any(i.taken_probability == 0.5 for i in branches)
        # Diamond structure: some block has two successors that rejoin.
        assert len(cfg.blocks) >= 4

    def test_divergent_kernel_compiles_safely(self):
        """Divergence-conservative liveness + region normalization must
        handle diamonds inside acquire regions."""
        from repro.arch.config import fermi_like
        from repro.compiler.pipeline import regmutex_compile
        from repro.compiler.verification import verify_regmutex_safety
        kernel = generate_kernel(KernelShape(
            name="div",
            phases=(
                PressurePhase(live_regs=8, length=20, mem_ratio=0.2),
                PressurePhase(live_regs=16, length=16, divergent=0.5),
                PressurePhase(live_regs=8, length=15, mem_ratio=0.2),
            ),
            regs_per_thread=16,
            threads_per_cta=64,
            outer_trips=2,
        ))
        cfg = fermi_like(registers_per_sm=6144, max_warps_per_sm=8,
                         max_ctas_per_sm=4, max_threads_per_sm=256, num_sms=1)
        compiled = regmutex_compile(kernel, cfg, forced_es=4)
        if compiled.metadata.uses_regmutex:
            result = verify_regmutex_safety(
                compiled, compiled.metadata.base_set_size
            )
            assert result.ok, result.violations[:3]

    def test_divergent_kernel_simulates(self):
        from repro.arch.config import fermi_like
        from repro.sim.gpu import Gpu
        from repro.sim.technique import BaselineTechnique
        kernel = generate_kernel(_shape(phases=(
            PressurePhase(live_regs=8, length=20, divergent=0.3),
        ), regs_per_thread=8, outer_trips=2))
        cfg = fermi_like(num_sms=1, max_warps_per_sm=8, max_ctas_per_sm=4,
                         max_threads_per_sm=256, registers_per_sm=4096,
                         dram_latency=60, l1_hit_latency=8)
        result = Gpu(cfg, BaselineTechnique()).launch(kernel, grid_ctas=2)
        assert result.cycles > 0

    def test_divergent_validation(self):
        with pytest.raises(ValueError):
            PressurePhase(live_regs=8, length=20, divergent=1.5)
        with pytest.raises(ValueError):
            PressurePhase(live_regs=8, length=2, divergent=0.5)

    def test_sfu_ratio_emits_sfu_ops(self):
        from repro.isa.instructions import OpClass
        kernel = generate_kernel(_shape(phases=(
            PressurePhase(live_regs=8, length=40, sfu_ratio=0.2),
        ), regs_per_thread=8))
        assert any(i.op_class is OpClass.SFU for i in kernel)

    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=5, max_value=40),
        st.integers(min_value=0, max_value=4),
    )
    def test_arbitrary_shapes_build_and_terminate(self, live, length, outer):
        shape = KernelShape(
            name="prop",
            phases=(
                PressurePhase(live_regs=live, length=length, mem_ratio=0.2),
                PressurePhase(live_regs=max(2, live // 2), length=length),
            ),
            regs_per_thread=live,
            outer_trips=outer,
        )
        kernel = generate_kernel(shape)
        trace = dynamic_pressure_trace(kernel, max_instructions=200_000)
        assert trace.instructions_executed > 0
