"""Table I fidelity tests for the 16-application suite."""

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF
from repro.arch.occupancy import occupancy_limited_by_registers
from repro.compiler.es_selection import select_extended_set_size
from repro.workloads.suite import (
    APPLICATIONS,
    FIGURE1_APPS,
    OCCUPANCY_LIMITED_APPS,
    REGISTER_RELAXED_APPS,
    build_app_kernel,
    get_app,
)

# Table I of the paper: name -> (regs, rounded regs, |Bs|).
TABLE1 = {
    "BFS": (21, 24, 18),
    "CUTCP": (25, 28, 20),
    "DWT2D": (44, 44, 38),
    "HotSpot3D": (32, 32, 24),
    "MRI-Q": (21, 24, 18),
    "ParticleFilter": (32, 32, 20),
    "RadixSort": (33, 36, 30),
    "SAD": (30, 32, 20),
    "Gaussian": (12, 12, 8),
    "HeartWall": (28, 28, 20),
    "LavaMD": (37, 40, 28),
    "MergeSort": (15, 16, 12),
    "MonteCarlo": (13, 16, 12),
    "SPMV": (16, 16, 12),
    "SRAD": (18, 20, 12),
    "TPACF": (28, 28, 20),
}


class TestTable1Fidelity:
    def test_sixteen_applications(self):
        assert len(APPLICATIONS) == 16
        assert set(APPLICATIONS) == set(TABLE1)

    @pytest.mark.parametrize("app", sorted(TABLE1))
    def test_register_counts_match_paper(self, app):
        regs, rounded, bs = TABLE1[app]
        spec = get_app(app)
        assert spec.regs == regs
        assert spec.rounded_regs == rounded
        assert spec.expected_bs == bs

    def test_groups_partition_suite(self):
        assert len(OCCUPANCY_LIMITED_APPS) == 8
        assert len(REGISTER_RELAXED_APPS) == 8
        assert not set(OCCUPANCY_LIMITED_APPS) & set(REGISTER_RELAXED_APPS)

    def test_figure1_apps_subset(self):
        assert len(FIGURE1_APPS) == 6
        assert set(FIGURE1_APPS) <= set(APPLICATIONS)

    @pytest.mark.parametrize("app", OCCUPANCY_LIMITED_APPS)
    def test_occupancy_limited_group_property(self, app):
        md = build_app_kernel(get_app(app)).metadata
        assert occupancy_limited_by_registers(GTX480, md)

    @pytest.mark.parametrize("app", REGISTER_RELAXED_APPS)
    def test_register_relaxed_group_property(self, app):
        md = build_app_kernel(get_app(app)).metadata
        assert not occupancy_limited_by_registers(GTX480, md)
        assert occupancy_limited_by_registers(GTX480_HALF_RF, md)

    @pytest.mark.parametrize(
        "app", [a for a, s in APPLICATIONS.items() if s.heuristic_matches]
    )
    def test_heuristic_agreement_where_geometry_allows(self, app):
        spec = get_app(app)
        kernel = build_app_kernel(spec)
        config = GTX480 if spec.group == "occupancy-limited" else GTX480_HALF_RF
        sel = select_extended_set_size(kernel, config)
        assert sel.base_set_size == spec.expected_bs

    def test_heuristic_exceptions_documented(self):
        mismatched = {a for a, s in APPLICATIONS.items() if not s.heuristic_matches}
        assert mismatched == {"DWT2D", "RadixSort", "LavaMD", "MergeSort"}

    def test_unknown_app_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="BFS"):
            get_app("NotAnApp")

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_expected_es_even_and_positive(self, app):
        spec = get_app(app)
        assert spec.expected_es > 0
        assert spec.expected_es % 2 == 0
