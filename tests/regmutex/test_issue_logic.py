"""Tests for RegMutex issue-stage logic and technique wiring."""

import pytest

from repro.arch.config import GTX480, fermi_like
from repro.isa.builder import KernelBuilder
from repro.regmutex.issue_logic import (
    RegMutexSmState,
    RegMutexTechnique,
    srp_section_count,
)
from repro.sim.rand import DeterministicRng
from repro.sim.stats import SmStats
from repro.sim.warp import Warp, WarpStatus
from repro.workloads.suite import build_app_kernel, get_app
from tests.conftest import straightline_kernel


class TestSrpSectionCount:
    def test_paper_worked_example(self):
        """|Bs|=18/20/16 with 48 warps on 32K registers leave 26/16/32
        sections (§III-A2)."""
        assert srp_section_count(GTX480, 48, 18, 6) == 26
        assert srp_section_count(GTX480, 48, 20, 4) == 16
        assert srp_section_count(GTX480, 48, 16, 8) == 32

    def test_capped_at_warp_slots(self):
        assert srp_section_count(GTX480, 8, 4, 2) == GTX480.max_warps_per_sm

    def test_zero_when_no_leftover(self):
        cfg = fermi_like(registers_per_sm=48 * 18 * 32)
        assert srp_section_count(cfg, 48, 18, 6) == 0

    def test_zero_es(self):
        assert srp_section_count(GTX480, 48, 18, 0) == 0


def _state(sections=2, retry="wakeup", config=None):
    config = config or GTX480
    kernel = straightline_kernel()
    stats = SmStats()
    return RegMutexSmState(kernel, config, stats, sections, retry), stats


def _warp(wid, kernel=None):
    return Warp(wid, 0, kernel or straightline_kernel(), DeterministicRng(wid))


class TestAcquireRelease:
    def test_acquire_grants_and_counts(self):
        state, stats = _state(sections=2)
        w = _warp(0)
        assert state.try_acquire(w, cycle=10)
        assert w.holds_extended_set
        assert stats.acquire_attempts == 1
        assert stats.acquire_successes == 1

    def test_exhausted_pool_parks_warp(self):
        state, stats = _state(sections=1)
        w0, w1 = _warp(0), _warp(1)
        assert state.try_acquire(w0, 0)
        assert not state.try_acquire(w1, 5)
        assert w1.status is WarpStatus.WAITING_ACQUIRE
        assert stats.acquire_attempts == 2
        assert stats.acquire_successes == 1

    def test_release_wakes_one_fifo(self):
        state, stats = _state(sections=1)
        w0, w1, w2 = _warp(0), _warp(1), _warp(2)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)
        state.try_acquire(w2, 2)
        state.release(w0, 10)
        woken = state.wakeup_pending()
        assert woken == [w1]  # FIFO: first blocked first woken
        assert state.waiting_warps == 1  # w2 still parked

    def test_wait_cycles_accounted(self):
        state, stats = _state(sections=1)
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 100)
        state.release(w0, 150)
        w1.status = WarpStatus.READY
        assert state.try_acquire(w1, 160)
        assert stats.acquire_wait_cycles == 60

    def test_warp_finish_reclaims_section(self):
        state, stats = _state(sections=1)
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)
        state.on_warp_finish(w0, 20)
        assert not w0.holds_extended_set
        assert state.wakeup_pending() == [w1]

    def test_finish_removes_from_wait_queue(self):
        state, _ = _state(sections=1)
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)
        state.on_warp_finish(w1, 5)  # parked warp dies (exception path)
        state.release(w0, 10)
        assert list(state.wakeup_pending()) == []

    def test_eager_policy_does_not_park(self):
        state, _ = _state(sections=1, retry="eager")
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        assert not state.try_acquire(w1, 1)
        assert w1.status is WarpStatus.READY  # retries at next issue round

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _state(retry="spin")


class TestTechnique:
    def test_occupancy_uses_bs(self):
        spec = get_app("BFS")
        tech = RegMutexTechnique(extended_set_size=spec.expected_es)
        kernel = build_app_kernel(spec)
        compiled = tech.prepare_kernel(kernel, GTX480)
        occ = tech.occupancy(compiled, GTX480)
        from repro.sim.technique import BaselineTechnique
        base_occ = BaselineTechnique().occupancy(kernel, GTX480)
        assert occ.resident_warps > base_occ.resident_warps

    def test_uninstrumented_kernel_falls_back(self):
        spec = get_app("Gaussian")  # not register-limited on full RF
        tech = RegMutexTechnique()
        kernel = build_app_kernel(spec)
        compiled = tech.prepare_kernel(kernel, GTX480)
        assert not compiled.metadata.uses_regmutex
        assert tech.num_sections(compiled, GTX480) == 0

    def test_sections_match_selection(self):
        spec = get_app("BFS")
        tech = RegMutexTechnique(extended_set_size=spec.expected_es)
        compiled = tech.prepare_kernel(build_app_kernel(spec), GTX480)
        occ = tech.occupancy(compiled, GTX480)
        assert tech.num_sections(compiled, GTX480) == srp_section_count(
            GTX480, occ.resident_warps, spec.expected_bs, spec.expected_es
        )


class TestStaleWakeup:
    def test_pending_wakeup_of_finished_warp_hands_on(self):
        """Regression: if a warp finished after release() earmarked a
        wakeup for it but before the wakeup landed, the wakeup — and with
        it the freed section — evaporated, leaving the next waiter parked
        forever."""
        state, _ = _state(sections=1)
        w0, w1, w2 = _warp(0), _warp(1), _warp(2)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)  # parks w1
        state.try_acquire(w2, 2)  # parks w2
        state.release(w0, 10)     # wakeup earmarked for w1
        state.on_warp_finish(w1, 11)  # ... but w1 dies first
        assert state.wakeup_pending() == [w2]
        w2.status = WarpStatus.READY
        assert state.try_acquire(w2, 12)  # the section was not lost

    def test_stale_wakeup_with_empty_queue_just_drops(self):
        state, _ = _state(sections=1)
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)
        state.release(w0, 10)
        state.on_warp_finish(w1, 11)  # no further waiters to hand to
        assert list(state.wakeup_pending()) == []
