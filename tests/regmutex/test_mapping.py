"""Tests for architected-to-physical register mapping (Figure 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.regmutex.mapping import RegMutexRegisterMapper
from repro.regmutex.srp import SharedRegisterPool
from repro.sim.regfile import BaselineRegisterMapper


class TestBaselineMapper:
    def test_y_equals_x_plus_coeff_times_widx(self):
        m = BaselineRegisterMapper(coeff=24, total_registers=1024)
        assert m.resolve(0, 5).physical_index == 5
        assert m.resolve(3, 5).physical_index == 5 + 24 * 3

    def test_out_of_allocation_rejected(self):
        m = BaselineRegisterMapper(coeff=8, total_registers=1024)
        with pytest.raises(ValueError, match="R8"):
            m.resolve(0, 8)

    def test_file_overflow_rejected(self):
        m = BaselineRegisterMapper(coeff=32, total_registers=64)
        with pytest.raises(ValueError, match="register file"):
            m.resolve(2, 0)

    def test_max_resident_warps(self):
        m = BaselineRegisterMapper(coeff=24, total_registers=1024)
        assert m.max_resident_warps() == 42  # 1024 // 24

    @given(st.integers(min_value=0, max_value=41),
           st.integers(min_value=0, max_value=23))
    def test_no_collisions_across_warps(self, warp, reg):
        """Distinct (warp, reg) pairs map to distinct physical registers."""
        m = BaselineRegisterMapper(coeff=24, total_registers=1024)
        phys = m.resolve(warp, reg).physical_index
        assert phys == warp * 24 + reg  # bijective by construction
        assert 0 <= phys < 1024


def _mapper(bs=18, es=6, warps=48, total=1024, sections=26):
    srp = SharedRegisterPool(max_warps=warps, num_sections=sections)
    return srp, RegMutexRegisterMapper(
        base_set_size=bs,
        extended_set_size=es,
        resident_warps=warps,
        total_registers=total,
        srp=srp,
    )


class TestRegMutexMapper:
    def test_base_path(self):
        _, m = _mapper()
        r = m.resolve(2, 5)
        assert r.region == "base"
        assert r.physical_index == 5 + 18 * 2

    def test_extended_requires_section(self):
        _, m = _mapper()
        with pytest.raises(PermissionError, match="without holding"):
            m.resolve(2, 20)

    def test_extended_path_uses_lut(self):
        srp, m = _mapper()
        srp.acquire(2)
        section = srp.lut_entry(2)
        r = m.resolve(2, 20)
        assert r.region == "extended"
        assert r.physical_index == (20 - 18) + 6 * section + m.srp_offset

    def test_out_of_range_register(self):
        srp, m = _mapper()
        srp.acquire(0)
        with pytest.raises(ValueError, match="R24"):
            m.resolve(0, 24)  # >= |Bs| + |Es|

    def test_overcommit_rejected_at_construction(self):
        srp = SharedRegisterPool(max_warps=48, num_sections=48)
        with pytest.raises(ValueError, match="overcommitted"):
            RegMutexRegisterMapper(
                base_set_size=20, extended_set_size=12,
                resident_warps=48, total_registers=1024, srp=srp,
            )

    def test_srp_offset_after_base_blocks(self):
        _, m = _mapper(bs=18, warps=48)
        assert m.srp_offset == 18 * 48

    @settings(deadline=None, max_examples=40)
    @given(st.data())
    def test_no_physical_collisions_between_holders(self, data):
        """The central safety property: with any set of warps holding
        sections, all (warp, arch reg) pairs resolve to distinct physical
        registers."""
        srp, m = _mapper(bs=18, es=6, warps=40, total=1024, sections=26)
        holders = data.draw(st.sets(
            st.integers(min_value=0, max_value=39), max_size=26))
        for w in holders:
            assert srp.acquire(w) is not None
        seen: dict[int, tuple[int, int]] = {}
        for w in range(40):
            regs = range(18 + 6) if w in holders else range(18)
            for x in regs:
                phys = m.resolve(w, x).physical_index
                assert phys not in seen, (
                    f"({w},R{x}) and {seen[phys]} share physical {phys}"
                )
                seen[phys] = (w, x)


class TestResolveBounds:
    def test_warp_index_below_range_rejected(self):
        _, m = _mapper(warps=48)
        with pytest.raises(ValueError, match="warp index -1"):
            m.resolve(-1, 0)

    def test_warp_index_above_range_rejected(self):
        """Regression: a warp index past the resident set used to wrap
        silently into arithmetic that lands inside another warp's base
        block instead of failing loudly."""
        _, m = _mapper(warps=48)
        with pytest.raises(ValueError, match="warp index 48"):
            m.resolve(48, 0)

    def test_last_resident_warp_still_resolves(self):
        _, m = _mapper(bs=18, warps=48)
        assert m.resolve(47, 0).physical_index == 47 * 18
