"""Tests for the runtime extended-register safety checker."""

import dataclasses

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.regmutex.issue_logic import RegMutexSmState, RegMutexTechnique
from repro.sim.gpu import Gpu
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.workloads.suite import build_app_kernel, get_app


@pytest.fixture
def checked_config():
    return fermi_like(
        name="checked", num_sms=1, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8, runtime_safety_checks=True,
    )


def _run_raw(kernel, config, sections=2):
    """Run a hand-built (possibly miscompiled) kernel without the
    compiler pipeline, exactly as the hardware would see it."""
    stats = SmStats()
    state = RegMutexSmState(kernel, config, stats, num_sections=sections)
    sm = StreamingMultiprocessor(
        sm_id=0, config=config, kernel=kernel, technique_state=state,
        ctas_resident_limit=1, total_ctas=1,
        rng=DeterministicRng(1), stats=stats,
    )
    return sm.run()


class TestRuntimeSafety:
    def test_wellformed_kernel_passes(self, checked_config):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
        for r in range(4):
            b.ldc(r)
        b.acquire()
        b.ldc(6)
        b.alu(0, 0, 6)
        b.release()
        b.store(0, 0)
        b.exit()
        kernel = b.build().with_metadata(
            base_set_size=6, extended_set_size=2, regs_per_thread=8
        )
        stats = _run_raw(kernel, checked_config)
        assert stats.cycles > 0

    def test_miscompiled_kernel_caught(self, checked_config):
        """An extended access outside any acquire region trips the check
        at issue time — the hardware contract, enforced dynamically."""
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
        b.ldc(0)
        b.ldc(6)          # extended index, no section held
        b.alu(0, 0, 6)
        b.exit()
        kernel = b.build().with_metadata(
            base_set_size=6, extended_set_size=2, regs_per_thread=8
        )
        with pytest.raises(PermissionError, match="R6"):
            _run_raw(kernel, checked_config)

    def test_access_after_release_caught(self, checked_config):
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
        b.ldc(0)
        b.acquire()
        b.ldc(6)
        b.release()
        b.alu(0, 0, 6)    # stale extended access
        b.exit()
        kernel = b.build().with_metadata(
            base_set_size=6, extended_set_size=2, regs_per_thread=8
        )
        with pytest.raises(PermissionError):
            _run_raw(kernel, checked_config)

    def test_pipeline_output_runs_clean_under_checks(self, checked_config):
        """The full compiler pipeline's output must satisfy the dynamic
        contract too — static verifier and runtime checker agree."""
        # A small register-limited kernel on the tiny device.
        from repro.workloads.generator import (
            KernelShape, PressurePhase, generate_kernel,
        )
        kernel = generate_kernel(KernelShape(
            name="checked-app",
            phases=(
                PressurePhase(live_regs=10, length=25, mem_ratio=0.2),
                PressurePhase(live_regs=20, length=15, mem_ratio=0.03),
                PressurePhase(live_regs=10, length=20, mem_ratio=0.2),
            ),
            regs_per_thread=20,
            threads_per_cta=64,
            outer_trips=3,
            seed=5,
        ))
        # A register file large enough to leave SRP sections after packing
        # the base sets (the tiny default has zero leftover at |Bs|=16).
        config = dataclasses.replace(checked_config, registers_per_sm=6144)
        gpu = Gpu(config, RegMutexTechnique(extended_set_size=4))
        result = gpu.launch(kernel, grid_ctas=4)
        assert result.cycles > 0
        assert result.stats.total.acquire_successes > 0

    def test_checks_off_by_default(self):
        cfg = fermi_like()
        assert not cfg.runtime_safety_checks
