"""Tests for the paired-warps specialization (§III-C)."""

import pytest

from repro.arch.config import GTX480
from repro.regmutex.paired import PairedWarpsSmState, PairedWarpsTechnique
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.rand import DeterministicRng
from repro.sim.stats import SmStats
from repro.sim.warp import Warp, WarpStatus
from repro.workloads.suite import build_app_kernel, get_app
from tests.conftest import straightline_kernel


def _state():
    kernel = straightline_kernel()
    stats = SmStats()
    return PairedWarpsSmState(kernel, GTX480, stats), stats


def _warp(wid):
    return Warp(wid, 0, straightline_kernel(), DeterministicRng(wid))


class TestPairedAcquire:
    def test_pair_partners_contend(self):
        state, stats = _state()
        w0, w1 = _warp(0), _warp(1)  # slots 0,1 -> pair 0
        assert state.try_acquire(w0, 0)
        assert not state.try_acquire(w1, 1)
        assert w1.status is WarpStatus.WAITING_ACQUIRE

    def test_different_pairs_independent(self):
        state, _ = _state()
        w0, w2 = _warp(0), _warp(2)  # pairs 0 and 1
        assert state.try_acquire(w0, 0)
        assert state.try_acquire(w2, 0)

    def test_release_hands_to_partner(self):
        state, stats = _state()
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)
        state.release(w0, 10)
        assert state.wakeup_pending() == [w1]
        w1.status = WarpStatus.READY
        assert state.try_acquire(w1, 11)

    def test_reacquire_is_noop(self):
        state, stats = _state()
        w0 = _warp(0)
        state.try_acquire(w0, 0)
        assert state.try_acquire(w0, 1)
        assert stats.acquire_successes == 2  # both count as successful

    def test_release_by_non_holder_is_noop(self):
        state, stats = _state()
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.release(w1, 5)  # partner holds nothing
        assert w0.holds_extended_set
        assert stats.release_count == 0

    def test_finish_releases_and_wakes_partner(self):
        state, _ = _state()
        w0, w1 = _warp(0), _warp(1)
        state.try_acquire(w0, 0)
        state.try_acquire(w1, 1)
        state.on_warp_finish(w0, 20)
        assert state.wakeup_pending() == [w1]


class TestPairedOccupancy:
    def test_pair_cost_is_2bs_plus_es(self):
        """§III-C: 2|Bs| + |Es| physical registers per pair."""
        spec = get_app("SAD")
        tech = PairedWarpsTechnique(extended_set_size=spec.expected_es)
        compiled = tech.prepare_kernel(build_app_kernel(spec), GTX480)
        md = compiled.metadata
        occ = tech.occupancy(compiled, GTX480)
        pair_cost = 2 * md.base_set_size + md.extended_set_size
        # Register usage accounting must respect the pair budget.
        pairs = occ.resident_warps // 2
        used = pairs * pair_cost * GTX480.warp_size * (
            md.threads_per_cta // ((md.threads_per_cta + 31) // 32) // 32 or 1
        )
        assert occ.resident_warps >= 2

    def test_paired_occupancy_between_baseline_and_default(self):
        """Paired packing can never beat the default mode's occupancy (it
        reserves a section per pair instead of sharing a communal pool)."""
        spec = get_app("BFS")
        paired = PairedWarpsTechnique(extended_set_size=spec.expected_es)
        default = RegMutexTechnique(extended_set_size=spec.expected_es)
        kernel = build_app_kernel(spec)
        cp = paired.prepare_kernel(kernel, GTX480)
        cd = default.prepare_kernel(kernel, GTX480)
        assert (
            paired.occupancy(cp, GTX480).resident_warps
            <= default.occupancy(cd, GTX480).resident_warps
        )

    def test_sections_are_half_the_warps(self):
        spec = get_app("BFS")
        tech = PairedWarpsTechnique(extended_set_size=spec.expected_es)
        compiled = tech.prepare_kernel(build_app_kernel(spec), GTX480)
        occ = tech.occupancy(compiled, GTX480)
        assert tech.num_sections(compiled, GTX480) == occ.resident_warps // 2

    def test_storage_is_single_bitmask(self):
        state, _ = _state()
        assert state.pair_status.width == GTX480.max_warps_per_sm // 2
