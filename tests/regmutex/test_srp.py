"""Tests for the SRP hardware structures (bitmasks, FFZ, LUT)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.regmutex.srp import Bitmask, SharedRegisterPool, lut_bits


class TestBitmask:
    def test_set_unset_test(self):
        m = Bitmask(8)
        m.set(3)
        assert m.test(3)
        m.unset(3)
        assert not m.test(3)

    def test_out_of_range(self):
        m = Bitmask(4)
        with pytest.raises(IndexError):
            m.set(4)
        with pytest.raises(IndexError):
            m.test(-1)

    def test_find_first_zero_empty(self):
        assert Bitmask(8).find_first_zero() == 0

    def test_find_first_zero_skips_set_bits(self):
        m = Bitmask(8)
        m.set(0)
        m.set(1)
        assert m.find_first_zero() == 2

    def test_find_first_zero_full(self):
        m = Bitmask(3)
        for i in range(3):
            m.set(i)
        assert m.find_first_zero() is None

    def test_popcount(self):
        m = Bitmask(16)
        for i in (1, 5, 9):
            m.set(i)
        assert m.popcount() == 3

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Bitmask(0)

    @given(st.sets(st.integers(min_value=0, max_value=47)))
    def test_ffz_is_least_unset(self, bits):
        m = Bitmask(48)
        for b in bits:
            m.set(b)
        ffz = m.find_first_zero()
        if len(bits) == 48:
            assert ffz is None
        else:
            assert ffz == min(set(range(48)) - bits)


class TestSharedRegisterPool:
    def test_initial_state(self):
        srp = SharedRegisterPool(max_warps=48, num_sections=26)
        assert srp.sections_free == 26
        assert srp.sections_in_use == 0
        srp.check_invariants()

    def test_phantom_sections_preset(self):
        """Bits past the physical section count are set at kernel placement
        and stay intact (paper §III-B1)."""
        srp = SharedRegisterPool(max_warps=48, num_sections=5)
        for section in range(5, 48):
            assert srp.srp_bitmask.test(section)
        for section in range(5):
            assert not srp.srp_bitmask.test(section)

    def test_acquire_release_roundtrip(self):
        srp = SharedRegisterPool(48, 4)
        section = srp.acquire(7)
        assert section == 0
        assert srp.holds_section(7)
        assert srp.lut_entry(7) == 0
        freed = srp.release(7)
        assert freed == 0
        assert not srp.holds_section(7)
        srp.check_invariants()

    def test_acquire_exhaustion(self):
        srp = SharedRegisterPool(48, 2)
        assert srp.acquire(0) == 0
        assert srp.acquire(1) == 1
        assert srp.acquire(2) is None  # pool full: warp must wait
        srp.check_invariants()

    def test_nested_acquire_is_noop(self):
        srp = SharedRegisterPool(48, 4)
        first = srp.acquire(3)
        second = srp.acquire(3)
        assert first == second
        assert srp.sections_in_use == 1

    def test_nested_release_is_noop(self):
        srp = SharedRegisterPool(48, 4)
        srp.acquire(3)
        assert srp.release(3) is not None
        assert srp.release(3) is None
        assert srp.sections_free == 4

    def test_sections_recycled_ffz_order(self):
        srp = SharedRegisterPool(48, 3)
        srp.acquire(0); srp.acquire(1); srp.acquire(2)
        srp.release(1)  # frees section 1
        assert srp.acquire(9) == 1  # FFZ returns the lowest free section

    def test_zero_sections(self):
        srp = SharedRegisterPool(48, 0)
        assert srp.acquire(0) is None

    def test_too_many_sections_rejected(self):
        with pytest.raises(ValueError):
            SharedRegisterPool(max_warps=48, num_sections=49)

    @settings(deadline=None, max_examples=60)
    @given(st.lists(
        st.tuples(st.sampled_from(["acq", "rel"]),
                  st.integers(min_value=0, max_value=47)),
        max_size=200,
    ))
    def test_invariants_under_random_traffic(self, ops):
        """The three structures never disagree, no section is double-owned,
        and free counts stay in range — under arbitrary acquire/release."""
        srp = SharedRegisterPool(48, 26)
        for op, warp in ops:
            if op == "acq":
                srp.acquire(warp)
            else:
                srp.release(warp)
            srp.check_invariants()

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=1, max_value=48))
    def test_capacity_is_exact(self, sections):
        """Exactly ``sections`` warps can hold sections simultaneously."""
        srp = SharedRegisterPool(48, sections)
        granted = [w for w in range(48) if srp.acquire(w) is not None]
        assert len(granted) == sections


class TestStorageGeometry:
    def test_lut_bits_matches_paper(self):
        """48 warps x ceil(log2 48) = 48 x 6 = 288 bits (§III-B1)."""
        assert lut_bits(48) == 288


class TestDegenerateGeometry:
    def test_lut_bits_single_slot_is_zero(self):
        """ceil(log2 1) = 0: one slot needs no index bits at all.  The
        old formula returned 1 x 1 = 1 phantom bit."""
        assert lut_bits(1) == 0

    def test_lut_bits_two_slots(self):
        assert lut_bits(2) == 2

    def test_lut_bits_still_rounds_up(self):
        assert lut_bits(3) == 3 * 2


class TestSectionsFreeClamp:
    def test_leaked_section_exhausts_pool_with_zero_free(self):
        """A lost release (warp-side state cleared, section bit stuck)
        leaks the section: the pool exhausts early, ``sections_free``
        bottoms out at 0 — never negative — and the structures' mutual
        inconsistency still trips check_invariants."""
        srp = SharedRegisterPool(4, 2)
        assert srp.acquire(0) is not None
        srp.corrupt_for_fault_injection(clear_slots=(0,))
        assert srp.acquire(1) is not None
        assert srp.acquire(2) is None  # section 0 is gone for good
        assert srp.sections_free == 0
        with pytest.raises(AssertionError, match="in use"):
            srp.check_invariants()

    def test_free_clamped_under_arbitrary_bit_soup(self):
        """The occupancy-facing count stays in [0, num_sections] no
        matter how the bitmask is corrupted."""
        for bits in ((0,), (0, 1), (0, 1, 2, 3)):
            srp = SharedRegisterPool(4, 2)
            srp.corrupt_for_fault_injection(set_section_bits=bits)
            assert 0 <= srp.sections_free <= srp.num_sections

    def test_cleared_placement_bit_trips_invariants(self):
        """Flipping a kernel-placement (pre-set) bit clear makes the raw
        free count exceed capacity; the clamped property must not hide
        that from check_invariants."""
        srp = SharedRegisterPool(4, 1)
        srp.corrupt_for_fault_injection(clear_section_bits=(2,))
        with pytest.raises(AssertionError, match="-1 section"):
            srp.check_invariants()

    def test_healthy_pool_unaffected(self):
        srp = SharedRegisterPool(4, 2)
        assert srp.sections_free == 2
        srp.acquire(0)
        assert srp.sections_free == 1
        srp.check_invariants()
