"""Tests for hardware storage-overhead accounting (§III-B1 / §IV-C)."""

from repro.arch.config import GTX480
from repro.regmutex.storage import (
    owf_storage_bits,
    paired_storage_bits,
    regmutex_storage_bits,
    rfv_storage_bits,
)


class TestRegMutexStorage:
    def test_paper_headline_number(self):
        """Warp-status (48) + SRP bitmask (48) + LUT (288) = 384 bits."""
        budget = regmutex_storage_bits(GTX480)
        parts = dict(budget.parts)
        assert parts["warp_status_bitmask"] == 48
        assert parts["srp_bitmask"] == 48
        assert parts["lut"] == 288
        assert budget.total_bits == 384

    def test_rfv_storage(self):
        """Renaming table 30,240 bits + 1,024 availability bits (§III-B1)."""
        budget = rfv_storage_bits(GTX480)
        parts = dict(budget.parts)
        assert parts["renaming_table"] == 30240
        assert parts["availability_bits"] == 1024
        assert budget.total_bits > 31_000

    def test_storage_ratio_exceeds_81x(self):
        """'RegMutex reduces the additional structure storage cost by more
        than 81x' (§III-B1)."""
        rm = regmutex_storage_bits(GTX480)
        rfv = rfv_storage_bits(GTX480)
        assert rm.ratio_vs(rfv) > 81

    def test_paired_is_single_half_length_bitmask(self):
        budget = paired_storage_bits(GTX480)
        assert budget.total_bits == 24  # Nw / 2
        assert len(budget.parts) == 1

    def test_paired_well_below_default(self):
        """§IV-E: paired-warps cuts storage by a large factor vs default
        RegMutex (the paper quotes >20x counting allocation logic; raw
        storage bits alone give 16x)."""
        paired = paired_storage_bits(GTX480)
        default = regmutex_storage_bits(GTX480)
        assert paired.ratio_vs(default) >= 16

    def test_owf_storage_small(self):
        assert owf_storage_bits(GTX480).total_bits == 24

    def test_ordering(self):
        """Storage cost ordering: paired < default RegMutex << RFV."""
        sizes = [
            paired_storage_bits(GTX480).total_bits,
            regmutex_storage_bits(GTX480).total_bits,
            rfv_storage_bits(GTX480).total_bits,
        ]
        assert sizes == sorted(sizes)
        assert sizes[1] * 10 < sizes[2]
