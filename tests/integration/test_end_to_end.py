"""End-to-end integration tests: compile + simulate on a small device.

These run the full stack (generator -> liveness -> |Es| selection ->
injection -> compaction -> cycle-level simulation with SRP arbitration)
on a shrunken GPU so they stay fast, and assert the paper's headline
behaviours qualitatively.
"""

import pytest

from repro.arch.config import fermi_like
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.baselines.rfv import RfvTechnique
from repro.harness.runner import ExperimentRunner
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.regmutex.paired import PairedWarpsTechnique
from repro.sim.technique import BaselineTechnique
from repro.workloads.generator import KernelShape, PressurePhase, generate_kernel


@pytest.fixture(scope="module")
def config():
    """A quarter-scale Fermi: 2 SMs, 16 warp slots, 8K registers."""
    return fermi_like(
        name="mini-fermi",
        num_sms=2,
        max_warps_per_sm=16,
        max_ctas_per_sm=8,
        max_threads_per_sm=512,
        registers_per_sm=8 * 1024,
        shared_mem_per_sm=16 * 1024,
        dram_latency=200,
        l1_hit_latency=20,
    )


@pytest.fixture(scope="module")
def limited_kernel():
    """Register-limited on the mini device: 24 regs x 128 threads.

    8K regs / (24 x 128) = 2 CTAs = 8 warps of 16 slots; relaxing the
    registers would allow 4 CTAs, so occupancy is register-limited.
    """
    return generate_kernel(KernelShape(
        name="mini-limited",
        phases=(
            PressurePhase(live_regs=12, length=40, mem_ratio=0.3),
            PressurePhase(live_regs=24, length=25, mem_ratio=0.04),
            PressurePhase(live_regs=12, length=35, mem_ratio=0.3),
        ),
        regs_per_thread=24,
        threads_per_cta=128,
        outer_trips=4,
        seed=99,
    ))


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(target_ctas_per_sm=8)


class TestRegMutexEndToEnd:
    def test_occupancy_boost_speeds_up(self, config, limited_kernel, runner):
        base = runner.run(limited_kernel, config, BaselineTechnique())
        rm = runner.run(
            limited_kernel, config, RegMutexTechnique(extended_set_size=6)
        )
        assert rm.theoretical_occupancy > base.theoretical_occupancy
        assert rm.reduction_vs(base) > 0.03

    def test_acquires_and_releases_balance(self, config, limited_kernel, runner):
        rm = runner.run(
            limited_kernel, config, RegMutexTechnique(extended_set_size=6)
        )
        assert rm.acquire_successes == rm.release_count
        assert rm.acquire_successes > 0

    def test_paired_mode_runs_and_trails_default(
        self, config, limited_kernel, runner
    ):
        base = runner.run(limited_kernel, config, BaselineTechnique())
        rm = runner.run(
            limited_kernel, config, RegMutexTechnique(extended_set_size=6)
        )
        paired = runner.run(
            limited_kernel, config, PairedWarpsTechnique(extended_set_size=6)
        )
        assert paired.theoretical_occupancy <= rm.theoretical_occupancy
        assert paired.reduction_vs(base) <= rm.reduction_vs(base) + 0.02

    def test_owf_runs_without_deadlock(self, config, limited_kernel, runner):
        owf = runner.run(
            limited_kernel, config, OwfTechnique(),
            scheduler_priority=owf_priority,
        )
        assert owf.cycles > 0

    def test_rfv_runs_and_boosts_occupancy(self, config, limited_kernel, runner):
        base = runner.run(limited_kernel, config, BaselineTechnique())
        rfv = runner.run(limited_kernel, config, RfvTechnique())
        assert rfv.theoretical_occupancy >= base.theoretical_occupancy

    def test_eager_retry_policy_completes(self, config, limited_kernel, runner):
        eager = runner.run(
            limited_kernel, config,
            RegMutexTechnique(extended_set_size=6, retry_policy="eager"),
        )
        assert eager.cycles > 0

    def test_compaction_off_still_correct(self, config, limited_kernel, runner):
        """Without compaction the kernel still runs: values stranded in
        extended indices keep their section held longer (the acquire
        region effectively widens), but execution must complete."""
        rm = runner.run(
            limited_kernel, config,
            RegMutexTechnique(extended_set_size=6, enable_compaction=False),
        )
        assert rm.cycles > 0


class TestHalfRegisterFileEndToEnd:
    def test_regmutex_recovers_slowdown(self, config, runner):
        """A kernel that is comfortable on the full file but limited on
        half of it: RegMutex recovers most of the loss."""
        kernel = generate_kernel(KernelShape(
            name="mini-relaxed",
            phases=(
                PressurePhase(live_regs=8, length=40, mem_ratio=0.3),
                PressurePhase(live_regs=16, length=20, mem_ratio=0.04),
                PressurePhase(live_regs=8, length=30, mem_ratio=0.3),
            ),
            regs_per_thread=16,
            threads_per_cta=128,
            outer_trips=4,
            seed=77,
        ))
        half = config.with_half_register_file()
        full = runner.run(kernel, config, BaselineTechnique())
        bare = runner.run(kernel, half, BaselineTechnique())
        rm = runner.run(kernel, half, RegMutexTechnique(extended_set_size=4))
        assert bare.increase_vs(full) > 0.02
        assert rm.increase_vs(full) < bare.increase_vs(full)


class TestFaultInjection:
    def test_unpaired_release_is_harmless(self, config, runner):
        """A kernel with a stray RELEASE (no prior acquire) must execute
        normally — the no-nesting rule makes it a no-op."""
        from repro.isa.builder import KernelBuilder
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(8):
            b.ldc(r)
        b.release()      # stray
        for i in range(10):
            b.alu(i % 8, (i + 1) % 8, (i + 2) % 8)
        b.store(0, 0)
        b.exit()
        kernel = b.build().with_metadata(
            base_set_size=6, extended_set_size=2, regs_per_thread=8
        )
        from repro.sim.gpu import Gpu
        tech = RegMutexTechnique(extended_set_size=2)
        # Bypass prepare_kernel: inject the faulty kernel directly.
        gpu = Gpu(config, BaselineTechnique())
        result = gpu.launch(b.build(), grid_ctas=2)
        assert result.cycles > 0

    def test_warp_exiting_inside_region_releases_section(self, config):
        """EXIT while holding a section must reclaim it (no SRP leak)."""
        from repro.isa.builder import KernelBuilder
        from repro.regmutex.issue_logic import RegMutexSmState
        from repro.sim.sm import StreamingMultiprocessor
        from repro.sim.stats import SmStats
        from repro.sim.rand import DeterministicRng

        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        b.ldc(0)
        b.acquire()
        b.alu(1, 0)
        b.exit()                      # never releases explicitly
        kernel = b.build()
        stats = SmStats()
        state = RegMutexSmState(kernel, config, stats, num_sections=1)
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel, technique_state=state,
            ctas_resident_limit=2, total_ctas=4,
            rng=DeterministicRng(3), stats=stats,
        )
        sm.run()
        # All 4 CTAs x 2 warps acquired the single section in turn.
        assert stats.acquire_successes == 8
        assert state.srp.sections_free == 1
