"""Dynamic SRP invariants observed through the cycle trace on a real
compiled application kernel: concurrent holders never exceed the section
count, and every acquire-release pairing is consistent per warp."""

import pytest

from repro.arch.config import fermi_like
from repro.regmutex.issue_logic import RegMutexSmState, RegMutexTechnique
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.trace import TracingTechniqueState
from repro.workloads.suite import build_app_kernel, get_app


@pytest.fixture(scope="module")
def traced_sad_run():
    """One SM of SAD (Table I's most section-starved app) with tracing."""
    config = fermi_like(num_sms=1)
    spec = get_app("SAD")
    technique = RegMutexTechnique(extended_set_size=spec.expected_es)
    compiled = technique.prepare_kernel(build_app_kernel(spec), config)
    occ = technique.occupancy(compiled, config)
    sections = technique.num_sections(compiled, config)
    stats = SmStats()
    inner = RegMutexSmState(compiled, config, stats, num_sections=sections)
    traced = TracingTechniqueState(inner)
    sm = StreamingMultiprocessor(
        sm_id=0, config=config, kernel=compiled, technique_state=traced,
        ctas_resident_limit=occ.ctas_per_sm, total_ctas=occ.ctas_per_sm,
        rng=DeterministicRng(11), stats=stats,
    )
    sm.run()
    return traced.trace, stats, sections


class TestDynamicSrpInvariants:
    def test_concurrent_holders_never_exceed_sections(self, traced_sad_run):
        trace, _, sections = traced_sad_run
        holding = 0
        peak = 0
        for event in trace.events:
            if event.kind == "acquire_ok":
                holding += 1
            elif event.kind == "release":
                holding -= 1
            assert holding >= 0
            peak = max(peak, holding)
        assert peak <= sections
        # The pool actually saturates on SAD (that is the contention
        # story); a peak below capacity would mean the trace lies.
        assert peak == sections

    def test_per_warp_alternation(self, traced_sad_run):
        """Each warp's event stream alternates acquire_ok / release."""
        trace, _, _ = traced_sad_run
        warp_ids = {e.warp_id for e in trace.events}
        for wid in warp_ids:
            state = "released"
            for e in trace.for_warp(wid):
                if e.kind == "acquire_ok":
                    assert state == "released", (wid, e)
                    state = "held"
                elif e.kind == "release":
                    assert state == "held", (wid, e)
                    state = "released"

    def test_stats_agree_with_trace(self, traced_sad_run):
        trace, stats, _ = traced_sad_run
        assert stats.acquire_successes == len(trace.of_kind("acquire_ok"))
        assert stats.release_count == len(trace.of_kind("release"))

    def test_blocked_acquires_present_under_contention(self, traced_sad_run):
        trace, stats, _ = traced_sad_run
        assert trace.of_kind("acquire_blocked")
        assert stats.acquire_success_rate < 0.9
