"""Property-based end-to-end tests: random kernels through the full
pipeline and simulator.

These are the repository's strongest correctness net: for arbitrary
generator shapes and |Es| choices, compilation must produce a
statically-safe kernel and the simulator must run it to completion with
balanced acquire/release accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import fermi_like
from repro.compiler.pipeline import regmutex_compile
from repro.compiler.verification import verify_regmutex_safety
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.gpu import Gpu
from repro.sim.technique import BaselineTechnique
from repro.workloads.generator import KernelShape, PressurePhase, generate_kernel

TINY = fermi_like(
    name="prop-tiny",
    num_sms=1,
    max_warps_per_sm=8,
    max_ctas_per_sm=4,
    max_threads_per_sm=256,
    registers_per_sm=4096,
    dram_latency=60,
    l1_hit_latency=8,
)


@st.composite
def shapes(draw):
    low = draw(st.integers(min_value=3, max_value=10))
    high = draw(st.integers(min_value=low + 4, max_value=28))
    return KernelShape(
        name="prop",
        phases=(
            PressurePhase(
                live_regs=low,
                length=draw(st.integers(min_value=5, max_value=25)),
                mem_ratio=draw(st.sampled_from([0.0, 0.1, 0.3])),
                barrier_after=draw(st.booleans()),
            ),
            PressurePhase(
                live_regs=high,
                length=draw(st.integers(min_value=4, max_value=20)),
                loop_trips=draw(st.integers(min_value=0, max_value=3)),
                mem_ratio=draw(st.sampled_from([0.0, 0.05])),
            ),
            PressurePhase(
                live_regs=low,
                length=draw(st.integers(min_value=5, max_value=20)),
                mem_ratio=draw(st.sampled_from([0.0, 0.2])),
            ),
        ),
        regs_per_thread=high,
        threads_per_cta=draw(st.sampled_from([32, 64, 128])),
        outer_trips=draw(st.integers(min_value=0, max_value=3)),
        scramble_indices=draw(st.booleans()),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


class TestCompileProperties:
    @settings(deadline=None, max_examples=40)
    @given(shapes(), st.sampled_from([2, 4, 6]))
    def test_compiled_kernels_statically_safe(self, shape, es):
        kernel = generate_kernel(shape)
        if es >= kernel.metadata.regs_per_thread:
            return
        try:
            compiled = regmutex_compile(kernel, TINY, forced_es=es)
        except ValueError:
            return  # es rejected for this kernel: fine
        md = compiled.metadata
        if not md.uses_regmutex:
            assert compiled.regmutex_instruction_count() == 0
            return
        result = verify_regmutex_safety(compiled, md.base_set_size)
        assert result.ok, result.violations[:3]

    @settings(deadline=None, max_examples=40)
    @given(shapes())
    def test_compilation_preserves_program(self, shape):
        """Modulo injected primitives and compaction MOV/renames, the
        opcode sequence is unchanged."""
        from repro.isa.instructions import Opcode
        kernel = generate_kernel(shape)
        try:
            compiled = regmutex_compile(kernel, TINY, forced_es=4)
        except ValueError:
            return
        original_ops = [i.opcode for i in kernel]
        compiled_ops = [
            i.opcode for i in compiled
            if not i.is_regmutex
            and not (i.opcode is Opcode.MOV and i.comment
                     and "compaction" in i.comment)
        ]
        assert compiled_ops == original_ops


class TestSimulationProperties:
    @settings(deadline=None, max_examples=15)
    @given(shapes())
    def test_baseline_and_regmutex_complete(self, shape):
        kernel = generate_kernel(shape)
        base = Gpu(TINY, BaselineTechnique()).launch(kernel, grid_ctas=2)
        assert base.cycles > 0
        try:
            rm = Gpu(TINY, RegMutexTechnique(extended_set_size=4)).launch(
                kernel, grid_ctas=2
            )
        except (ValueError, RuntimeError):
            return  # not placeable / es rejected: acceptable outcomes
        total = rm.stats.total
        # Acquire accounting balances: every success is eventually
        # released (explicitly or by EXIT reclamation).
        assert total.acquire_successes >= total.release_count
        assert total.acquire_attempts >= total.acquire_successes

    @settings(deadline=None, max_examples=15)
    @given(shapes(), st.integers(min_value=1, max_value=4))
    def test_work_conservation(self, shape, grid):
        """Issued instructions equal the sum of per-warp dynamic paths —
        the simulator neither loses nor duplicates work."""
        kernel = generate_kernel(shape)
        result = Gpu(TINY, BaselineTechnique(), seed=3).launch(
            kernel, grid_ctas=grid
        )
        warps_per_cta = (kernel.metadata.threads_per_cta + 31) // 32
        issued = result.stats.total.instructions_issued
        # Each warp's dynamic length depends on its RNG only through
        # probability branches; the generator uses trip counts, so all
        # warps follow the same path.
        from repro.liveness.pressure import dynamic_pressure_trace
        per_warp = dynamic_pressure_trace(kernel).instructions_executed
        assert issued == per_warp * warps_per_cta * grid
