"""Tests for the RFV (register file virtualization) baseline model."""

import pytest

from repro.arch.config import GTX480
from repro.baselines.rfv import RfvSmState, RfvTechnique
from repro.isa.builder import KernelBuilder
from repro.sim.rand import DeterministicRng
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique
from repro.sim.warp import Warp
from repro.workloads.suite import build_app_kernel, get_app


def _kernel(regs=8):
    b = KernelBuilder(regs_per_thread=regs, threads_per_cta=64)
    for r in range(regs):
        b.ldc(r)
    for i in range(6):
        b.alu(i % regs, (i + 1) % regs, (i + 2) % regs)
    for r in range(1, regs):
        b.alu(0, 0, r)
    b.store(0, 0)
    b.exit()
    return b.build()


def _state(kernel=None, pool=None, config=GTX480):
    kernel = kernel or _kernel()
    stats = SmStats()
    state = RfvSmState(kernel, config, stats)
    if pool is not None:
        state.pool_capacity = pool
        state.pool_free = pool
    return state, stats


def _warp(wid, kernel):
    return Warp(wid, 0, kernel, DeterministicRng(wid))


class TestRfvState:
    def test_allocation_tracks_live_count(self):
        kernel = _kernel()
        state, _ = _state(kernel)
        w = _warp(0, kernel)
        state.on_issue(w, kernel[0], 0)
        first = state._allocated[w.warp_id]
        w.pc = 4
        state.on_issue(w, kernel[4], 1)
        assert state._allocated[w.warp_id] >= first

    def test_deallocation_returns_to_pool(self):
        kernel = _kernel()
        state, _ = _state(kernel)
        w = _warp(0, kernel)
        w.pc = 4
        state.on_issue(w, kernel[4], 0)
        held = state._allocated[w.warp_id]
        free_before = state.pool_free
        # Move to the tail where pressure has collapsed.
        w.pc = len(kernel) - 1
        state.on_issue(w, kernel[w.pc], 1)
        assert state.pool_free > free_before - held  # net regs returned

    def test_exhausted_pool_blocks_non_holder(self):
        kernel = _kernel()
        state, _ = _state(kernel, pool=2)
        w0, w1 = _warp(0, kernel), _warp(1, kernel)
        w0.pc = 6
        assert state.can_issue(w0, kernel[6], 0)  # takes the reserve
        state.on_issue(w0, kernel[6], 0)
        w1.pc = 6
        assert not state.can_issue(w1, kernel[6], 1)

    def test_reserve_grants_progress_on_empty_pool(self):
        """Forward-progress reserve: one warp may always over-allocate."""
        kernel = _kernel()
        state, _ = _state(kernel, pool=2)
        w0 = _warp(0, kernel)
        w0.pc = 6
        assert state.can_issue(w0, kernel[6], 0)

    def test_reserve_released_at_barrier(self):
        """The reserve must not sit on a barrier waiter (deadlock)."""
        from repro.isa.builder import KernelBuilder
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(8):
            b.ldc(r)
        b.barrier()
        for r in range(1, 8):
            b.alu(0, 0, r)
        b.store(0, 0)
        b.exit()
        kernel = b.build()
        state, _ = _state(kernel, pool=2)
        w0, w1 = _warp(0, kernel), _warp(1, kernel)
        w0.pc = 6
        assert state.can_issue(w0, kernel[6], 0)   # w0 takes the reserve
        state.on_issue(w0, kernel[6], 0)
        barrier_pc = next(pc for pc, i in enumerate(kernel) if i.is_barrier)
        w0.pc = barrier_pc
        state.on_issue(w0, kernel[barrier_pc], 1)  # issues BAR.SYNC
        w1.pc = 6
        assert state.can_issue(w1, kernel[6], 2)   # reserve handed over

    def test_finish_returns_all(self):
        kernel = _kernel()
        state, _ = _state(kernel)
        w = _warp(0, kernel)
        w.pc = 5
        state.on_issue(w, kernel[5], 0)
        state.on_warp_finish(w, 10)
        assert state.pool_free == state.pool_capacity

    def test_peak_use_tracked(self):
        kernel = _kernel()
        state, _ = _state(kernel)
        w = _warp(0, kernel)
        w.pc = 6
        state.on_issue(w, kernel[6], 0)
        assert state.peak_pool_use > 0


class TestRfvTechnique:
    def test_occupancy_exceeds_baseline_on_limited_apps(self):
        """Virtualized allocation packs CTAs by mean live demand, so a
        register-limited kernel gains residency."""
        for app in ("BFS", "SAD", "DWT2D"):
            spec = get_app(app)
            kernel = build_app_kernel(spec)
            rfv_occ = RfvTechnique().occupancy(kernel, GTX480)
            base_occ = BaselineTechnique().occupancy(kernel, GTX480)
            assert rfv_occ.resident_warps >= base_occ.resident_warps

    def test_kernel_unchanged(self):
        spec = get_app("BFS")
        kernel = build_app_kernel(spec)
        assert RfvTechnique().prepare_kernel(kernel, GTX480) is kernel
