"""Tests for the OWF baseline model."""

import pytest

from repro.arch.config import GTX480
from repro.baselines.owf import OwfSmState, OwfTechnique, owf_priority, _extra_ctas
from repro.isa.instructions import Instruction, Opcode
from repro.sim.rand import DeterministicRng
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique
from repro.sim.warp import Warp, WarpStatus
from repro.workloads.suite import build_app_kernel, get_app
from tests.conftest import straightline_kernel


def _state(base_ctas=2, extra_ctas=1, threshold_kernel=None):
    kernel = threshold_kernel or straightline_kernel()
    kernel = kernel.with_metadata(
        regs_per_thread=8, base_set_size=4, extended_set_size=4
    )
    stats = SmStats()
    return OwfSmState(kernel, GTX480, stats, base_ctas, extra_ctas), stats


def _warp(wid, cta):
    w = Warp(wid, cta, straightline_kernel(), DeterministicRng(wid))
    return w


def _shared_inst():
    return Instruction(Opcode.IADD, (5,), (6,))   # touches >= threshold 4


def _base_inst():
    return Instruction(Opcode.IADD, (0,), (1,))


class TestOwfState:
    def test_native_warps_own_from_launch(self):
        state, _ = _state()
        native = _warp(0, cta=0)
        assert state.can_issue(native, _shared_inst(), 0)
        assert native.owns_pair_lock

    def test_extra_warp_free_in_base_region(self):
        state, _ = _state(base_ctas=2, extra_ctas=1)
        extra = _warp(10, cta=2)  # cta 2 >= base 2 -> extra
        assert state.is_extra(extra)
        assert state.can_issue(extra, _base_inst(), 0)

    def test_extra_warp_blocks_on_shared_access(self):
        state, stats = _state(base_ctas=2, extra_ctas=1)
        native = _warp(0, cta=0)
        state.can_issue(native, _base_inst(), 0)  # registers the native
        extra = _warp(10, cta=2)
        assert not state.can_issue(extra, _shared_inst(), 5)
        assert extra.status is WarpStatus.WAITING_ACQUIRE
        assert stats.acquire_attempts == 1
        assert stats.acquire_successes == 0

    def test_partner_finish_unblocks_extra(self):
        state, stats = _state(base_ctas=1, extra_ctas=1)
        native = _warp(0, cta=0)
        state.can_issue(native, _base_inst(), 0)
        extra = _warp(10, cta=1)
        state.can_issue(extra, _shared_inst(), 5)
        state.on_warp_finish(native, 50)
        assert state.wakeup_pending() == [extra]
        assert extra.owns_pair_lock
        assert stats.acquire_successes == 1
        assert stats.acquire_wait_cycles == 45

    def test_extra_owns_when_no_native_alive(self):
        state, _ = _state(base_ctas=1, extra_ctas=1)
        extra = _warp(10, cta=1)
        assert state.can_issue(extra, _shared_inst(), 0)
        assert extra.owns_pair_lock

    def test_priority_prefers_owners(self):
        owner, waiter = _warp(0, 0), _warp(1, 1)
        owner.owns_pair_lock = True
        assert owf_priority(owner) < owf_priority(waiter)


class TestOwfTechnique:
    def test_occupancy_at_least_baseline(self):
        for app in ("BFS", "SAD", "CUTCP"):
            spec = get_app(app)
            kernel = build_app_kernel(spec)
            tech = OwfTechnique()
            compiled = tech.prepare_kernel(kernel, GTX480)
            owf_occ = tech.occupancy(compiled, GTX480)
            base_occ = BaselineTechnique().occupancy(kernel, GTX480)
            assert owf_occ.ctas_per_sm >= base_occ.ctas_per_sm

    def test_extra_ctas_never_overcommit_registers(self):
        for app in ("BFS", "SAD", "ParticleFilter", "RadixSort"):
            spec = get_app(app)
            kernel = build_app_kernel(spec)
            tech = OwfTechnique()
            compiled = tech.prepare_kernel(kernel, GTX480)
            md = compiled.metadata
            base = BaselineTechnique().occupancy(compiled, GTX480)
            extra = _extra_ctas(GTX480, md, base)
            used = (
                base.ctas_per_sm * md.regs_per_thread
                + extra * (md.base_set_size or md.regs_per_thread)
            ) * md.threads_per_cta
            assert used <= GTX480.registers_per_sm
            total_threads = (base.ctas_per_sm + extra) * md.threads_per_cta
            assert total_threads <= GTX480.max_threads_per_sm

    def test_rejects_precompiled_kernel(self):
        spec = get_app("BFS")
        kernel = build_app_kernel(spec).with_metadata(
            base_set_size=18, extended_set_size=6, regs_per_thread=24
        )
        with pytest.raises(ValueError):
            OwfTechnique().prepare_kernel(kernel, GTX480)
