"""Unit tests for the event bus and event log (no simulator involved)."""

import pytest

from repro.observe import (
    ACQUIRE_OK,
    ISSUE,
    RELEASE,
    STALL,
    WARP_FINISH,
    EventBus,
    EventLog,
    SimEvent,
)


def _ev(cycle, kind, warp_id=-1, detail=None, value=0):
    return SimEvent(cycle, kind, warp_id=warp_id, detail=detail, value=value)


class TestEventBus:
    def test_wildcard_subscriber_sees_everything(self):
        bus, seen = EventBus(), []
        bus.subscribe(seen.append)
        bus.emit(_ev(1, ISSUE, 0))
        bus.emit(_ev(2, RELEASE, 1))
        assert [e.kind for e in seen] == [ISSUE, RELEASE]

    def test_kind_subscriber_filters(self):
        bus, seen = EventBus(), []
        bus.subscribe(seen.append, kind=RELEASE)
        bus.emit(_ev(1, ISSUE, 0))
        bus.emit(_ev(2, RELEASE, 1))
        bus.emit(_ev(3, ISSUE, 0))
        assert [e.cycle for e in seen] == [2]

    def test_unknown_kind_rejected_at_subscribe(self):
        with pytest.raises(KeyError, match="unknown event kind"):
            EventBus().subscribe(lambda e: None, kind="not_a_kind")

    def test_subscribe_returns_fn(self):
        bus = EventBus()
        fn = lambda e: None  # noqa: E731
        assert bus.subscribe(fn) is fn

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count == 0
        bus.subscribe(lambda e: None)
        bus.subscribe(lambda e: None, kind=ISSUE)
        bus.subscribe(lambda e: None, kind=ISSUE)
        assert bus.subscriber_count == 3

    def test_wildcard_then_kind_dispatch_order(self):
        bus, order = EventBus(), []
        bus.subscribe(lambda e: order.append("any"))
        bus.subscribe(lambda e: order.append("kind"), kind=ISSUE)
        bus.emit(_ev(1, ISSUE))
        assert order == ["any", "kind"]


class TestEventLog:
    def _log(self, *events):
        log = EventLog()
        for e in events:
            log.append(e)
        return log

    def test_len_iter_and_of_kind(self):
        log = self._log(_ev(1, ISSUE, 0), _ev(2, RELEASE, 0),
                        _ev(3, ISSUE, 1))
        assert len(log) == 3
        assert [e.cycle for e in log] == [1, 2, 3]
        assert len(log.of_kind(ISSUE)) == 2

    def test_for_warp_and_warp_ids(self):
        log = self._log(_ev(1, ISSUE, 0), _ev(2, ISSUE, 3),
                        _ev(3, STALL, detail="memory", value=2))
        assert [e.warp_id for e in log.for_warp(3)] == [3]
        assert log.warp_ids() == [0, 3]  # stall has no warp subject

    def test_hold_intervals_pairing(self):
        log = self._log(
            _ev(10, ACQUIRE_OK, 0), _ev(20, RELEASE, 0),
            _ev(30, ACQUIRE_OK, 0), _ev(45, RELEASE, 0),
        )
        assert log.hold_intervals(0) == [(10, 20), (30, 45)]

    def test_unmatched_hold_closes_at_finish(self):
        log = self._log(_ev(10, ACQUIRE_OK, 0), _ev(25, WARP_FINISH, 0))
        assert log.hold_intervals(0) == [(10, 25)]

    def test_unmatched_hold_closes_at_last_logged_cycle(self):
        log = self._log(_ev(10, ACQUIRE_OK, 0), _ev(99, ISSUE, 1))
        assert log.hold_intervals(0) == [(10, 99)]

    def test_stall_totals_sums_by_category(self):
        log = self._log(
            _ev(1, STALL, detail="memory", value=2),
            _ev(2, STALL, detail="memory", value=3),
            _ev(2, STALL, detail="acquire", value=1),
            _ev(3, ISSUE, 0),
        )
        assert log.stall_totals() == {"memory": 5, "acquire": 1}
