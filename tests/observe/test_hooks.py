"""Observer hook tests against real simulator runs.

The two invariants the subsystem promises live here:

* **neutrality** — attaching an observer changes nothing about the
  simulation (bit-identical ``SmStats``);
* **stall consistency** — the per-cycle STALL event stream sums to the
  aggregate ``SmStats`` stall counters exactly, per category.
"""

from dataclasses import asdict

import pytest

from repro.observe import (
    ACQUIRE_BLOCKED,
    ACQUIRE_OK,
    CTA_LAUNCH,
    CTA_RETIRE,
    ISSUE,
    RELEASE,
    SECTION_ACQUIRE,
    SECTION_RELEASE,
    STALL_CATEGORIES,
    WARP_FINISH,
    EventBus,
    SmObserver,
)


class TestEventEmission:
    def test_issue_events_cover_every_instruction(self, run_sm,
                                                  regmutex_kernel):
        obs, stats, _ = run_sm(regmutex_kernel())
        issues = obs.log.of_kind(ISSUE)
        assert len(issues) == 2 * 16  # 2 warps x 16 instructions
        assert len(issues) == stats.instructions_issued
        assert all(e.detail for e in issues)  # opcode label attached

    def test_acquire_release_and_finish(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel())
        assert len(obs.log.of_kind(ACQUIRE_OK)) == 2
        assert len(obs.log.of_kind(RELEASE)) == 2
        assert len(obs.log.of_kind(WARP_FINISH)) == 2
        assert not obs.log.of_kind(ACQUIRE_BLOCKED)  # 2 sections, 2 warps

    def test_contention_emits_blocked_events(self, run_sm, regmutex_kernel):
        obs, stats, _ = run_sm(regmutex_kernel(), sections=1)
        blocked = obs.log.of_kind(ACQUIRE_BLOCKED)
        assert blocked
        assert stats.acquire_attempts > stats.acquire_successes

    def test_cta_lifecycle_events(self, run_sm, regmutex_kernel):
        # The initial fill (2 resident CTAs) happens in the SM
        # constructor, before any observer exists; only replacement
        # launches are observable — every retire is.
        obs, _, _ = run_sm(regmutex_kernel(), total_ctas=3)
        launches = obs.log.of_kind(CTA_LAUNCH)
        assert [e.value for e in launches] == [2]
        assert len(obs.log.of_kind(CTA_RETIRE)) == 3

    def test_srp_section_transitions(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel())
        acquires = obs.log.of_kind(SECTION_ACQUIRE)
        releases = obs.log.of_kind(SECTION_RELEASE)
        assert len(acquires) == len(releases) == 2
        assert all(0 <= e.value < 2 for e in acquires)  # section index

    def test_events_cycle_ordered(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=2)
        cycles = [e.cycle for e in obs.log]
        assert cycles == sorted(cycles)


class TestStallConsistency:
    def test_stall_stream_sums_to_aggregate_counters(self, run_sm,
                                                     regmutex_kernel):
        """The satellite invariant: per-cycle STALL deltas reconstruct
        the SmStats stall breakdown exactly, category by category."""
        obs, stats, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=4)
        totals = obs.log.stall_totals()
        for category in STALL_CATEGORIES:
            assert totals.get(category, 0) == getattr(
                stats, f"stall_{category}"
            ), category
        # The workload is contended enough to make the test non-vacuous.
        assert stats.stall_memory > 0
        assert stats.stall_acquire > 0

    def test_no_phantom_categories(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=4)
        assert set(obs.log.stall_totals()) <= set(STALL_CATEGORIES)


class TestNeutrality:
    def test_observed_run_is_bit_identical(self, run_sm, regmutex_kernel):
        _, plain, plain_sm = run_sm(regmutex_kernel(), sections=1,
                                    total_ctas=4, observe=False)
        obs, observed, observed_sm = run_sm(regmutex_kernel(), sections=1,
                                            total_ctas=4)
        assert observed_sm.cycle == plain_sm.cycle
        assert asdict(observed) == asdict(plain)
        assert len(obs.log) > 0  # the observer actually observed


class TestObserverLifecycle:
    def test_attach_twice_rejected(self, run_sm, regmutex_kernel,
                                   config):
        from repro.regmutex.issue_logic import RegMutexSmState
        from repro.sim.rand import DeterministicRng
        from repro.sim.sm import StreamingMultiprocessor
        from repro.sim.stats import SmStats

        kernel = regmutex_kernel()
        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel,
            technique_state=RegMutexSmState(kernel, config, stats,
                                            num_sections=2),
            ctas_resident_limit=2, total_ctas=1,
            rng=DeterministicRng(1), stats=stats,
        )
        SmObserver().attach(sm)
        with pytest.raises(ValueError, match="already has an observer"):
            SmObserver().attach(sm)

    def test_collect_log_false_keeps_probes_only(self, run_sm,
                                                 regmutex_kernel):
        obs, _, sm = run_sm(regmutex_kernel(),
                            observer=SmObserver(collect_log=False))
        assert obs.log is None
        assert len(obs.samples) > 0

    def test_kind_filtered_subscriber_on_live_run(self, run_sm,
                                                  regmutex_kernel):
        bus, releases = EventBus(), []
        bus.subscribe(releases.append, kind=RELEASE)
        obs, _, _ = run_sm(regmutex_kernel(), observer=SmObserver(bus=bus))
        assert len(releases) == 2
        assert releases == obs.log.of_kind(RELEASE)

    def test_final_sample_lands_on_last_cycle(self, run_sm,
                                              regmutex_kernel):
        obs, _, sm = run_sm(regmutex_kernel(), stride=1000)
        assert obs.samples.cycle[-1] == sm.cycle


class TestDelegation:
    def test_wrapper_preserves_technique_behaviour(self, run_sm,
                                                   regmutex_kernel):
        obs, stats, sm = run_sm(regmutex_kernel())
        # The observed SM's installed state is the wrapper; its queries
        # answer from the wrapped RegMutex state.
        assert sm.technique.srp_view() == sm.technique.inner.srp_view()
        assert sm.technique.debug_snapshot() == \
            sm.technique.inner.debug_snapshot()
