"""Probe-series tests: stride sampling and the columnar timeline."""

import pytest

from repro.observe import ProbeSample, ProbeSeries, SmObserver


class TestProbeSeries:
    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            ProbeSeries(stride=0)

    def test_columns_stay_parallel(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), stride=8)
        s = obs.samples
        n = len(s)
        assert n > 1
        for name in s.columns:
            assert len(getattr(s, name)) == n
        assert len(s.sched_issued) == n

    def test_cycles_strictly_increasing_and_stride_spaced(self, run_sm,
                                                          regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), stride=16)
        cycles = obs.samples.cycle
        assert cycles == sorted(set(cycles))
        # All gaps except the final flush sample respect the stride.
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        assert all(g >= 16 for g in gaps[:-1])

    def test_row_view_matches_columns(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel())
        s = obs.samples
        row = s.row(0)
        assert isinstance(row, ProbeSample)
        assert row.cycle == s.cycle[0]
        assert row.srp_total == s.srp_total[0]
        assert len(s.rows()) == len(s)

    def test_srp_columns_track_the_pool(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=2)
        s = obs.samples
        assert all(t == 2 for t in s.srp_total)
        assert all(0 <= u <= t for u, t in zip(s.srp_in_use, s.srp_total))
        assert 0.0 <= s.srp_utilization() <= 1.0
        assert s.peak_srp_in_use() <= 2

    def test_contended_run_shows_waiting_warps(self, run_sm,
                                               regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=4,
                           stride=4)
        assert any(w > 0 for w in obs.samples.warps_waiting_acquire)
        assert obs.samples.peak_srp_in_use() == 1

    def test_live_register_pressure_positive_while_resident(self, run_sm,
                                                            regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), stride=4)
        s = obs.samples
        assert any(v > 0 for v in s.live_registers)
        # Pressure rises when a warp holds its extended set.
        assert any(h > 0 for h in s.section_holders)

    def test_scheduler_columns_sum_to_issued_total(self, run_sm,
                                                   regmutex_kernel):
        obs, stats, _ = run_sm(regmutex_kernel(), total_ctas=2)
        final = obs.samples.sched_issued[-1]
        assert sum(final) == stats.instructions_issued

    def test_counters_monotonic(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=3,
                           stride=8)
        s = obs.samples
        for name in ("instructions_issued", "idle_scheduler_cycles",
                     "stall_memory", "stall_acquire"):
            col = getattr(s, name)
            assert all(a <= b for a, b in zip(col, col[1:])), name
