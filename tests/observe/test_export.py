"""Exporter tests: Chrome trace-event JSON and the CSV timeline.

Half of these run against real observed simulations (the integration
contract Perfetto relies on); the other half feed hand-built payloads to
``validate_chrome_trace`` to pin down each rejection path CI depends on.
"""

import csv
import json

import pytest

from repro.observe import (
    ACQUIRE_BLOCKED,
    ACQUIRE_OK,
    ISSUE,
    EventLog,
    SimEvent,
    chrome_trace_events,
    timeline_rows,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_timeline_csv,
)
from repro.observe.export import REQUIRED_KEYS, TID_SM, TID_WARP_BASE


class TestChromeTraceFromRun:
    def test_every_event_has_required_keys(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=2)
        events = chrome_trace_events(obs.log, obs.samples)
        assert events
        for e in events:
            for key in REQUIRED_KEYS:
                assert key in e

    def test_trace_validates(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=2)
        events = chrome_trace_events(obs.log, obs.samples)
        assert validate_chrome_trace(events) == len(events)

    def test_track_variety(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=2)
        events = chrome_trace_events(obs.log, obs.samples)
        phases = {e["ph"] for e in events}
        assert {"M", "B", "E", "C", "i"} <= phases
        # Warp tracks and the process-scoped CTA instants both exist.
        tids = {e["tid"] for e in events}
        assert TID_SM in tids
        assert any(t >= TID_WARP_BASE for t in tids)

    def test_include_issues_adds_complete_events(self, run_sm,
                                                 regmutex_kernel):
        obs, stats, _ = run_sm(regmutex_kernel())
        with_issues = chrome_trace_events(obs.log, include_issues=True)
        xs = [e for e in with_issues if e["ph"] == "X"]
        assert len(xs) == stats.instructions_issued
        without = chrome_trace_events(obs.log, include_issues=False)
        assert not [e for e in without if e["ph"] == "X"]

    def test_file_round_trip(self, run_sm, regmutex_kernel, tmp_path):
        obs, _, _ = run_sm(regmutex_kernel(), sections=1, total_ctas=2)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, chrome_trace_events(obs.log, obs.samples))
        assert validate_trace_file(path) > 0
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["displayTimeUnit"] == "ms"

    def test_dangling_hold_is_closed(self):
        """A log that ends mid-hold (crashed run) still exports balanced
        B/E spans — the validator would reject it otherwise."""
        log = EventLog()
        log.append(SimEvent(5, ACQUIRE_BLOCKED, warp_id=0))
        log.append(SimEvent(9, ACQUIRE_OK, warp_id=0, value=1))
        log.append(SimEvent(20, ISSUE, warp_id=0, detail="ALU"))
        events = chrome_trace_events(log)
        assert validate_chrome_trace(events) == len(events)
        closes = [e for e in events if e["ph"] == "E"]
        assert any(e["name"] == "hold S1" and e["ts"] == 20 for e in closes)


def _minimal(ph="i", **over):
    e = {"ph": ph, "ts": 0, "pid": 0, "tid": 0, "name": "x"}
    if ph == "i":
        e["s"] = "t"
    e.update(over)
    return e


class TestValidatorRejections:
    def test_rejects_non_trace_root(self):
        with pytest.raises(ValueError, match="expected object or array"):
            validate_chrome_trace("nope")

    def test_rejects_object_without_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="no events"):
            validate_chrome_trace([])

    def test_accepts_bare_array(self):
        assert validate_chrome_trace([_minimal()]) == 1

    @pytest.mark.parametrize("missing", REQUIRED_KEYS)
    def test_rejects_missing_required_key(self, missing):
        event = _minimal()
        del event[missing]
        with pytest.raises(ValueError, match=missing):
            validate_chrome_trace([event])

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace([_minimal(ph="Z")])

    def test_rejects_end_without_begin(self):
        with pytest.raises(ValueError, match="'E' without matching 'B'"):
            validate_chrome_trace([_minimal(ph="E")])

    def test_rejects_unclosed_begin(self):
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace([_minimal(ph="B")])

    def test_balance_is_per_track(self):
        # B on track 1, E on track 2: both tracks are broken even though
        # the global count balances.
        events = [_minimal(ph="B", tid=1), _minimal(ph="E", tid=2)]
        with pytest.raises(ValueError):
            validate_chrome_trace(events)


class TestCsvTimeline:
    def test_headers_and_rows(self, run_sm, regmutex_kernel):
        obs, _, _ = run_sm(regmutex_kernel())
        headers, rows = timeline_rows(obs.samples)
        assert headers[0] == "cycle"
        assert "srp_in_use" in headers
        num_scheds = len(obs.samples.sched_issued[0])
        assert headers[-num_scheds:] == [
            f"sched{j}_issued" for j in range(num_scheds)
        ]
        assert len(rows) == len(obs.samples)
        assert all(len(r) == len(headers) for r in rows)

    def test_csv_round_trip(self, run_sm, regmutex_kernel, tmp_path):
        obs, _, _ = run_sm(regmutex_kernel())
        path = str(tmp_path / "timeline.csv")
        write_timeline_csv(path, obs.samples)
        with open(path, newline="") as fh:
            read = list(csv.reader(fh))
        headers, rows = timeline_rows(obs.samples)
        assert read[0] == headers
        assert [[int(v) for v in row] for row in read[1:]] == rows
