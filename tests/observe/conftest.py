"""Shared fixtures for the observability suite.

Everything here runs on the tiny one-SM config so the whole suite stays
in the sub-second range; the RegMutex kernel exercises acquire/release
(and therefore the SRP section tracks) end to end.
"""

from __future__ import annotations

import pytest

from repro.arch.config import fermi_like
from repro.isa.builder import KernelBuilder
from repro.observe import SmObserver
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats


@pytest.fixture
def config():
    return fermi_like(
        name="observe-test", num_sms=1, max_warps_per_sm=8,
        max_ctas_per_sm=4, max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


def _build_regmutex_kernel():
    b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
    for r in range(4):
        b.ldc(r)
    b.acquire()
    for r in range(4, 8):
        b.ldc(r)
    for r in range(4, 8):
        b.alu(0, 0, r)
    b.release()
    b.store(0, 0)
    b.exit()
    return b.build()


@pytest.fixture
def regmutex_kernel():
    """Factory: a fresh 16-instruction acquire/release kernel per call."""
    return _build_regmutex_kernel


@pytest.fixture
def run_sm(config):
    """Factory: run one SM on a RegMutex state, optionally observed.

    Returns ``(observer_or_None, stats, sm)``.  Build parameters default
    to the trace-test shape (2 resident warps, 2 sections) so acquire
    succeeds immediately; pass ``sections=1`` / ``total_ctas>1`` to
    create contention and stalls.
    """

    def _run(kernel, sections=2, total_ctas=1, resident=2, seed=1,
             observer=None, observe=True, stride=8):
        stats = SmStats()
        state = RegMutexSmState(kernel, config, stats,
                                num_sections=sections)
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel, technique_state=state,
            ctas_resident_limit=resident, total_ctas=total_ctas,
            rng=DeterministicRng(seed), stats=stats,
        )
        obs = None
        if observe:
            obs = observer if observer is not None else SmObserver(
                stride=stride
            )
            obs.attach(sm)
        sm.run()
        return obs, stats, sm

    return _run
