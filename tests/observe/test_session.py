"""End-to-end profiled runs and the text report."""

from repro.observe import (
    chrome_trace_events,
    profile_kernel,
    profile_report,
    validate_chrome_trace,
)
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.technique import BaselineTechnique
from tests.conftest import looped_kernel, straightline_kernel


class TestProfileKernel:
    def test_baseline_smoke(self, config):
        result = profile_kernel(
            straightline_kernel(), config, BaselineTechnique(), stride=16
        )
        assert result.error is None
        assert result.technique_name == "baseline"
        assert result.stats.cycles > 0
        assert result.srp_sections == 0  # stock GPU has no pool
        assert len(result.samples) > 0
        assert len(result.log) > 0

    def test_regmutex_profile_produces_valid_trace(self, config):
        result = profile_kernel(
            looped_kernel(), config, RegMutexTechnique(), stride=16
        )
        assert result.error is None
        events = chrome_trace_events(result.log, result.samples)
        assert validate_chrome_trace(events) == len(events)

    def test_total_ctas_defaults_to_two_waves(self, config):
        tech = BaselineTechnique()
        kernel = straightline_kernel()
        resident = tech.occupancy(kernel, config).ctas_per_sm
        result = profile_kernel(kernel, config, tech)
        assert result.total_ctas == max(1, resident) * 2

    def test_explicit_cta_count_respected(self, config):
        result = profile_kernel(
            straightline_kernel(), config, BaselineTechnique(), total_ctas=3
        )
        assert result.total_ctas == 3
        assert result.stats.ctas_launched == 3


class TestProfileReport:
    def test_report_renders_all_sections(self, config):
        result = profile_kernel(
            looped_kernel(), config, RegMutexTechnique(), stride=16
        )
        text = profile_report(
            result.stats, config, samples=result.samples, log=result.log,
            title="looped @ regmutex",
        )
        assert text.startswith("looped @ regmutex\n")
        assert "stall attribution" in text
        assert "cycles" in text and "IPC" in text
        assert "timelines" in text
        assert "event log:" in text

    def test_report_works_without_observations(self, config):
        result = profile_kernel(
            straightline_kernel(), config, BaselineTechnique()
        )
        text = profile_report(result.stats, config)
        assert "stall attribution" in text
        assert "timelines" not in text
