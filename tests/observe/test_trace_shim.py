"""The legacy ``sim.trace`` recorder as a shim over the event bus."""

import pytest

from repro.observe import ISSUE, ObservingTechniqueState
from repro.regmutex.issue_logic import RegMutexSmState
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.trace import Trace, TraceEvent, TracingTechniqueState


def _run_traced(config, kernel):
    stats = SmStats()
    inner = RegMutexSmState(kernel, config, stats, num_sections=2)
    with pytest.warns(DeprecationWarning, match="TracingTechniqueState"):
        traced = TracingTechniqueState(inner)
    sm = StreamingMultiprocessor(
        sm_id=0, config=config, kernel=kernel, technique_state=traced,
        ctas_resident_limit=2, total_ctas=1,
        rng=DeterministicRng(1), stats=stats,
    )
    sm.run()
    return traced


class TestTraceShim:
    def test_construction_warns_deprecated(self, config, regmutex_kernel):
        stats = SmStats()
        inner = RegMutexSmState(regmutex_kernel(), config, stats,
                                num_sections=2)
        with pytest.warns(DeprecationWarning):
            TracingTechniqueState(inner)

    def test_shim_is_an_observing_wrapper(self, config, regmutex_kernel):
        traced = _run_traced(config, regmutex_kernel())
        assert isinstance(traced, ObservingTechniqueState)

    def test_records_the_legacy_vocabulary(self, config, regmutex_kernel):
        traced = _run_traced(config, regmutex_kernel())
        trace = traced.trace
        assert {e.kind for e in trace.events} == {
            "issue", "acquire_ok", "release", "warp_finish"
        }
        assert len(trace.of_kind("issue")) == 2 * 16
        issue = trace.of_kind("issue")[0]
        assert isinstance(issue, TraceEvent)
        assert issue.opcode  # detail -> opcode mapping preserved

    def test_extra_bus_kinds_are_dropped(self, config, regmutex_kernel):
        # The shim's private bus never carries stall/CTA/section events
        # (no SmObserver drives them), and even direct emission of a
        # non-legacy kind must not leak into the Trace.
        from repro.observe import SECTION_ACQUIRE, SimEvent

        stats = SmStats()
        inner = RegMutexSmState(regmutex_kernel(), config, stats,
                                num_sections=2)
        with pytest.warns(DeprecationWarning):
            traced = TracingTechniqueState(inner)
        traced.bus.emit(SimEvent(1, SECTION_ACQUIRE, warp_id=0, value=0))
        assert len(traced.trace) == 0

    def test_existing_trace_instance_reused(self, config, regmutex_kernel):
        stats = SmStats()
        inner = RegMutexSmState(regmutex_kernel(), config, stats,
                                num_sections=2)
        mine = Trace()
        with pytest.warns(DeprecationWarning):
            traced = TracingTechniqueState(inner, trace=mine)
        assert traced.trace is mine

    def test_issue_kind_constant_matches_bus(self, config, regmutex_kernel):
        traced = _run_traced(config, regmutex_kernel())
        assert traced.trace.of_kind(ISSUE)  # same string vocabulary
