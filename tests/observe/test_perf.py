"""Perf-artifact tests: schema, sanitization, and the disk round trip."""

import json

import pytest

from repro.harness.telemetry import (
    MODE_CACHED,
    MODE_INLINE,
    MODE_POOL,
    SessionTelemetry,
)
from repro.observe import (
    STATUS_INCONCLUSIVE,
    STATUS_OK,
    STATUS_REGRESSED,
    artifact_filename,
    compare_perf_artifacts,
    load_perf_artifact,
    perf_artifact,
    write_perf_artifact,
)


def _session():
    t = SessionTelemetry(workers=2)
    t.record("fig7/BFS/regmutex", 2.0, MODE_POOL, cycles=1_000_000)
    t.record("fig7/BFS/baseline", 0.0, MODE_CACHED, cycles=500_000)
    t.record("fig7/SAD/regmutex", 1.0, MODE_INLINE, failed=True,
             failure_kind="deadlock", attempts=2)
    t.wall_seconds = 3.0
    return t


class TestArtifactFilename:
    def test_plain_label(self):
        assert artifact_filename("nightly") == "BENCH_nightly.json"

    def test_hostile_characters_sanitized(self):
        assert artifact_filename("a b/c:d") == "BENCH_a-b-c-d.json"

    def test_empty_label_falls_back(self):
        assert artifact_filename("///") == "BENCH_run.json"


class TestPerfArtifact:
    def test_schema_and_totals(self):
        a = perf_artifact("unit", _session())
        assert a["schema"] == 1
        assert a["label"] == "unit"
        assert a["workers"] == 2
        assert a["totals"]["jobs"] == 3
        assert a["totals"]["failures"] == 1
        # Cached cycles cost no simulation time, so they must not sit
        # in the throughput numerator: totals.cycles is computed-only,
        # cached work is reported in its own field.
        assert a["totals"]["cycles"] == 1_000_000
        assert a["totals"]["cached_cycles"] == 500_000
        assert a["totals"]["sim_seconds"] == pytest.approx(3.0)
        assert a["totals"]["cycles_per_sec"] == pytest.approx(
            1_000_000 / 3.0, rel=1e-3)
        assert a["cache"] == {"hits": 1, "misses": 2,
                              "hit_rate": pytest.approx(1 / 3, abs=1e-4)}
        assert a["failure_kinds"] == {"deadlock": 1}

    def test_mixed_session_throughput_excludes_cached(self):
        # Regression: a partially-cached session used to count cached
        # cycles in the numerator while sim_seconds excluded their
        # (zero) time, inflating cycles_per_sec by the cache hit rate.
        t = SessionTelemetry(workers=1)
        t.record("a", 2.0, MODE_POOL, cycles=800_000)
        t.record("b", 0.0, MODE_CACHED, cycles=10_000_000_000)
        a = perf_artifact("mixed", t)
        assert a["totals"]["cycles_per_sec"] == pytest.approx(400_000.0)

    def test_all_cached_session_has_no_throughput(self):
        t = SessionTelemetry(workers=1)
        t.record("a", 0.0, MODE_CACHED, cycles=500_000)
        a = perf_artifact("warm", t)
        assert a["totals"]["cycles"] == 0
        assert a["totals"]["cached_cycles"] == 500_000
        assert a["totals"]["cycles_per_sec"] is None

    def test_figures_embedded_when_given(self):
        figs = {"fig7": {"mean_cycle_reduction": 0.131, "apps": 8.0}}
        a = perf_artifact("unit", _session(), figures=figs)
        assert a["figures"] == figs
        assert "figures" not in perf_artifact("unit", _session())

    def test_per_job_rows(self):
        jobs = {j["label"]: j for j in perf_artifact("unit", _session())["jobs"]}
        simulated = jobs["fig7/BFS/regmutex"]
        assert simulated["cycles_per_sec"] == pytest.approx(500_000.0)
        assert simulated["mode"] == MODE_POOL
        cached = jobs["fig7/BFS/baseline"]
        assert cached["cycles_per_sec"] is None  # no time was spent
        failed = jobs["fig7/SAD/regmutex"]
        assert failed["failed"] and failed["failure_kind"] == "deadlock"
        assert failed["attempts"] == 2

    def test_write_load_round_trip(self, tmp_path):
        path = write_perf_artifact("round trip", _session(),
                                   directory=str(tmp_path))
        assert path.endswith("BENCH_round-trip.json")
        loaded = load_perf_artifact(path)
        assert loaded == perf_artifact("round trip", _session())

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="schema-1"):
            load_perf_artifact(str(path))

    def test_load_rejects_missing_sections(self, tmp_path):
        path = tmp_path / "BENCH_partial.json"
        path.write_text(json.dumps({"schema": 1, "label": "x",
                                    "totals": {}, "cache": {}}))
        with pytest.raises(ValueError, match="jobs"):
            load_perf_artifact(str(path))

    def test_cycles_per_sec_property(self):
        t = _session()
        by_label = {j.label: j for j in t.timings}
        assert by_label["fig7/BFS/regmutex"].cycles_per_sec == \
            pytest.approx(500_000.0)
        assert by_label["fig7/BFS/baseline"].cycles_per_sec is None
        assert by_label["fig7/SAD/regmutex"].cycles_per_sec is None


def _artifact(cps):
    t = SessionTelemetry(workers=1)
    a = perf_artifact("x", t)
    a["totals"]["cycles_per_sec"] = cps
    return a


class TestComparePerfArtifacts:
    def test_ok_within_threshold(self):
        c = compare_perf_artifacts(_artifact(95.0), _artifact(100.0),
                                   warn_threshold=0.15)
        assert c.ok and c.status == STATUS_OK
        assert not c.messages
        assert c.current == pytest.approx(95.0)
        assert c.baseline == pytest.approx(100.0)

    def test_regressed_past_threshold(self):
        c = compare_perf_artifacts(_artifact(80.0), _artifact(100.0),
                                   warn_threshold=0.15)
        assert c.regressed and c.status == STATUS_REGRESSED
        assert c.messages

    def test_faster_is_never_regressed(self):
        assert compare_perf_artifacts(_artifact(500.0), _artifact(100.0)).ok

    @pytest.mark.parametrize("cur,base", [
        (None, 100.0), (100.0, None), (None, None), (0.0, 100.0),
    ])
    def test_missing_throughput_is_inconclusive_not_regressed(
            self, cur, base):
        # Regression: a fully-cached run (cycles_per_sec None) used to
        # be reported as a failure and fail the CI gate.  "No data" is
        # a distinct verdict callers must be able to tell from
        # "slower".
        c = compare_perf_artifacts(_artifact(cur), _artifact(base))
        assert c.inconclusive and c.status == STATUS_INCONCLUSIVE
        assert not c.regressed
        assert c.messages  # still says *why* it could not compare
