"""Orchestrator failure regimes: retry, attribution, timeout, propagation."""

import pytest

from repro.arch.config import fermi_like
from repro.harness.orchestrator import Orchestrator
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import JobFailure, JobSpec, TechniqueSpec

CFG = fermi_like(
    name="failure-test", num_sms=1, max_warps_per_sm=16, max_ctas_per_sm=4,
    max_threads_per_sm=512, registers_per_sm=8192,
    dram_latency=60, l1_hit_latency=8,
)

# Too few registers for any app kernel: placement deterministically fails.
UNPLACEABLE_CFG = fermi_like(
    name="unplaceable", num_sms=1, max_warps_per_sm=16, max_ctas_per_sm=4,
    max_threads_per_sm=512, registers_per_sm=64,
    dram_latency=60, l1_hit_latency=8,
)


def _job(technique: TechniqueSpec, config=CFG, app="Gaussian") -> JobSpec:
    return JobSpec(app=app, config=config, technique=technique)


def _orchestrator(**kwargs) -> Orchestrator:
    runner = ExperimentRunner(target_ctas_per_sm=2, seed=7)
    return Orchestrator(runner, **kwargs)


class TestFailurePropagation:
    def test_placement_failure_becomes_typed_job_failure(self):
        job = _job(TechniqueSpec.of("baseline"), config=UNPLACEABLE_CFG)
        orch = _orchestrator(workers=1)
        outcome = orch.run_jobs([job])[job]
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "placement"
        assert outcome.attempts == 1
        assert "does not fit" in outcome.message

    def test_one_failure_does_not_sink_the_batch(self):
        bad = _job(TechniqueSpec.of("baseline"), config=UNPLACEABLE_CFG)
        good = _job(TechniqueSpec.of("baseline"))
        orch = _orchestrator(workers=1)
        outcomes = orch.run_jobs([bad, good])
        assert isinstance(outcomes[bad], JobFailure)
        assert isinstance(outcomes[good], RunRecord)

    def test_failure_kind_reaches_telemetry(self):
        job = _job(TechniqueSpec.of("baseline"), config=UNPLACEABLE_CFG)
        orch = _orchestrator(workers=1)
        orch.run_jobs([job])
        assert orch.telemetry.failures == 1
        assert orch.telemetry.failures_by_kind() == {"placement": 1}


@pytest.mark.faults
class TestWorkerCrashRetry:
    def test_transient_crash_is_retried_and_batch_completes(self, tmp_path):
        marker = str(tmp_path / "crash.marker")
        crash = _job(TechniqueSpec.of(
            "faulty-worker", mode="worker-crash", marker_path=marker
        ))
        bystander = _job(TechniqueSpec.of("baseline"))
        orch = _orchestrator(workers=2, max_retries=2, retry_backoff=0.01)
        outcomes = orch.run_jobs([crash, bystander])
        # First dispatch dies (marker written), retry runs clean.
        assert isinstance(outcomes[crash], RunRecord)
        assert isinstance(outcomes[bystander], RunRecord)
        assert orch.telemetry.retries >= 1

    def test_deterministic_sim_error_is_not_retried(self):
        job = _job(TechniqueSpec.of("faulty-worker", mode="sim-error"))
        orch = _orchestrator(workers=2, max_retries=2, retry_backoff=0.01)
        outcome = orch.run_jobs([job])[job]
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "simulation-error"
        assert outcome.attempts == 1  # exactly one dispatch

    def test_sim_error_in_inline_mode_matches_pool_mode(self):
        job = _job(TechniqueSpec.of("faulty-worker", mode="sim-error"))
        orch = _orchestrator(workers=1)
        outcome = orch.run_jobs([job])[job]
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "simulation-error"


@pytest.mark.faults
class TestJobTimeout:
    def test_hung_worker_times_out(self):
        job = _job(TechniqueSpec.of(
            "faulty-worker", mode="worker-sleep", delay_seconds=5.0
        ))
        orch = _orchestrator(workers=2, job_timeout=0.5, max_retries=0)
        outcome = orch.run_jobs([job])[job]
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "timeout"
        assert orch.telemetry.failures_by_kind() == {"timeout": 1}

    def test_per_job_timeout_overrides_session_default(self):
        """A per-job timeout must cut one job's budget without touching
        its siblings: the hung job fails typed while the sibling on the
        same pool round completes normally."""
        hung = _job(TechniqueSpec.of(
            "faulty-worker", mode="worker-sleep", delay_seconds=8.0
        ))
        sibling = _job(TechniqueSpec.of("baseline"))
        orch = _orchestrator(workers=2, job_timeout=120.0, max_retries=0)
        outcomes = orch.run_jobs([hung, sibling], timeouts={hung: 0.5})
        assert isinstance(outcomes[hung], JobFailure)
        assert outcomes[hung].kind == "timeout"
        assert isinstance(outcomes[sibling], RunRecord)
        assert orch.telemetry.failures_by_kind() == {"timeout": 1}

    def test_nonpositive_per_job_timeout_rejected(self):
        job = _job(TechniqueSpec.of("baseline"))
        orch = _orchestrator(workers=2)
        with pytest.raises(ValueError, match="timeout"):
            orch.run_jobs([job], timeouts={job: 0.0})


class TestValidation:
    def test_bad_job_timeout_rejected(self):
        with pytest.raises(ValueError, match="job_timeout"):
            _orchestrator(workers=1, job_timeout=0.0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            _orchestrator(workers=1, max_retries=-1)
