"""Telemetry serialization: the one codepath shared by the BENCH perf
artifact and the service wire protocol (``to_dict``/``from_dict`` with
a schema marker)."""

from __future__ import annotations

import json

import pytest

from repro.harness.telemetry import (
    MODE_CACHED,
    MODE_POOL,
    TELEMETRY_SCHEMA_VERSION,
    JobTiming,
    SessionTelemetry,
)


def _session() -> SessionTelemetry:
    t = SessionTelemetry(workers=3)
    t.record("Gaussian/baseline", 1.25, MODE_POOL, cycles=123_456)
    t.record("BFS/regmutex-e4", 0.0, MODE_CACHED, cycles=88_000)
    t.record("MergeSort/owf", 0.5, MODE_POOL, failed=True,
             failure_kind="timeout", attempts=2)
    t.record("Hotspot/baseline", 2.0, MODE_POOL, cycles=200_000,
             resumed_from_cycle=40_000)
    t.wall_seconds = 4.5
    return t


class TestJobTiming:
    def test_round_trip_preserves_every_field(self):
        for timing in _session().timings:
            back = JobTiming.from_dict(timing.to_dict())
            assert back == timing

    def test_payload_is_json_safe_and_carries_derived_rate(self):
        timing = JobTiming("a/b", 2.0, MODE_POOL, cycles=100)
        payload = json.loads(json.dumps(timing.to_dict()))
        assert payload["cycles_per_sec"] == 50.0
        assert JobTiming.from_dict(payload) == timing

    def test_unknown_keys_are_ignored(self):
        payload = JobTiming("a/b", 1.0, MODE_POOL).to_dict()
        payload["from_the_future"] = True
        assert JobTiming.from_dict(payload).label == "a/b"

    @pytest.mark.parametrize("broken", [
        "not a dict",
        {},
        {"label": "x"},                       # missing mode/seconds
        {"label": 7, "mode": MODE_POOL, "seconds": 1.0},
    ])
    def test_malformed_payload_raises_value_error(self, broken):
        with pytest.raises(ValueError):
            JobTiming.from_dict(broken)


class TestSessionTelemetry:
    def test_round_trip_preserves_aggregates(self):
        session = _session()
        back = SessionTelemetry.from_dict(
            json.loads(json.dumps(session.to_dict()))
        )
        assert back.timings == session.timings
        assert back.workers == session.workers
        assert back.wall_seconds == session.wall_seconds
        assert back.failures == 1
        assert back.retries == 1
        assert back.resumed_jobs == 1
        assert back.cache_hits == 1

    def test_schema_marker_is_stamped_and_checked(self):
        payload = _session().to_dict()
        assert payload["schema"] == TELEMETRY_SCHEMA_VERSION
        payload["schema"] = TELEMETRY_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            SessionTelemetry.from_dict(payload)

    def test_non_dict_payload_raises(self):
        with pytest.raises(ValueError, match="not dict"):
            SessionTelemetry.from_dict([1, 2])
