"""Tests for the command-line interface (cheap commands only; the
figure commands are exercised by the benchmark suite)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BFS" in out and "fig7" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DWT2D" in out
        assert "38" in out  # DWT2D's |Bs|

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "384" in out
        assert "31264" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "CUTCP" in out and "|" in out

    def test_fig1_app_subset(self, capsys):
        assert main(["fig1", "--apps", "SAD"]) == 0
        out = capsys.readouterr().out
        assert "SAD" in out and "CUTCP" not in out

    def test_bad_app_rejected(self):
        with pytest.raises(KeyError):
            main(["fig1", "--apps", "NopeApp"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_requires_known_app(self):
        with pytest.raises(SystemExit):
            main(["run", "NopeApp"])

    def test_run_single_app(self, capsys, tmp_path):
        # Mini end-to-end through the CLI; uses the real GTX480 but the
        # smallest app and the cache keeps re-runs free.
        assert main([
            "--cache", str(tmp_path / "c.json"),
            "run", "Gaussian", "--technique", "baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycles/CTA" in out
        assert "Gaussian" in out
