"""Tests for the command-line interface (cheap commands only; the
figure commands are exercised by the benchmark suite)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BFS" in out and "fig7" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DWT2D" in out
        assert "38" in out  # DWT2D's |Bs|

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "384" in out
        assert "31264" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "CUTCP" in out and "|" in out

    def test_fig1_app_subset(self, capsys):
        assert main(["fig1", "--apps", "SAD"]) == 0
        out = capsys.readouterr().out
        assert "SAD" in out and "CUTCP" not in out

    def test_bad_app_rejected(self):
        with pytest.raises(KeyError):
            main(["fig1", "--apps", "NopeApp"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_requires_known_app(self):
        with pytest.raises(SystemExit):
            main(["run", "NopeApp"])

    def test_bench_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            main(["--cache", str(tmp_path / "c.json"),
                  "bench", "--figures", "fig99"])

    def test_bench_renders_telemetry(self, capsys, tmp_path, monkeypatch):
        # Swap the figure registry for one tiny spec so the bench path
        # (orchestrate -> build rows -> telemetry report) stays cheap.
        from repro.arch.config import fermi_like
        from repro.harness import experiments as E

        cfg = fermi_like(
            name="cli-bench", num_sms=1, max_warps_per_sm=8,
            max_ctas_per_sm=2, max_threads_per_sm=256,
            registers_per_sm=8192, dram_latency=60, l1_hit_latency=8,
        )
        monkeypatch.setattr(
            E, "FIGURE_SPECS",
            {"fig7": lambda: E.fig7_spec(("Gaussian",), cfg)},
        )
        assert main([
            "--cache", str(tmp_path / "c.json"),
            "--workers", "2", "bench",
            "--label", "cli-test", "--artifact-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "orchestration telemetry" in out
        assert "cache misses" in out
        assert "slowest" in out
        assert "BENCH_cli-test.json" in out
        from repro.observe.perf import load_perf_artifact

        artifact = load_perf_artifact(str(tmp_path / "BENCH_cli-test.json"))
        assert artifact["totals"]["jobs"] == 2
        assert artifact["totals"]["cycles"] > 0

    def test_bench_fail_threshold_gate(self, capsys, tmp_path, monkeypatch):
        """--fail-threshold turns the baseline comparison into a hard
        gate: exit 1 + ::error:: on regression, exit 0 otherwise."""
        import json

        from repro.arch.config import fermi_like
        from repro.harness import experiments as E

        cfg = fermi_like(
            name="cli-bench", num_sms=1, max_warps_per_sm=8,
            max_ctas_per_sm=2, max_threads_per_sm=256,
            registers_per_sm=8192, dram_latency=60, l1_hit_latency=8,
        )
        monkeypatch.setattr(
            E, "FIGURE_SPECS",
            {"fig7": lambda: E.fig7_spec(("Gaussian",), cfg)},
        )
        cache = str(tmp_path / "c.json")
        assert main([
            "--cache", cache, "bench",
            "--label", "gate", "--artifact-dir", str(tmp_path),
        ]) == 0
        artifact = json.loads((tmp_path / "BENCH_gate.json").read_text())

        # A baseline no machine can match: the gate must trip.
        fast = dict(artifact, totals=dict(
            artifact["totals"], cycles_per_sec=1e18))
        (tmp_path / "BENCH_fast.json").write_text(json.dumps(fast))
        capsys.readouterr()
        # Fresh caches below so the jobs actually compute: a measured
        # throughput far below the absurd baseline must trip the gate.
        assert main([
            "--cache", str(tmp_path / "c2.json"), "bench", "--no-artifact",
            "--baseline", str(tmp_path / "BENCH_fast.json"),
            "--fail-threshold", "50",
        ]) == 1
        assert "::error::" in capsys.readouterr().out

        # A floor baseline: any run clears it, the gate stays quiet.
        slow = dict(artifact, totals=dict(
            artifact["totals"], cycles_per_sec=0.001))
        (tmp_path / "BENCH_slow.json").write_text(json.dumps(slow))
        assert main([
            "--cache", str(tmp_path / "c3.json"), "bench", "--no-artifact",
            "--baseline", str(tmp_path / "BENCH_slow.json"),
            "--fail-threshold", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "::error::" not in out
        assert "throughput ok" in out

        with pytest.raises(ValueError):
            main([
                "--cache", cache, "bench", "--no-artifact",
                "--baseline", str(tmp_path / "BENCH_slow.json"),
                "--fail-threshold", "-1",
            ])

    def _tiny_fig7(self, monkeypatch):
        from repro.arch.config import fermi_like
        from repro.harness import experiments as E

        cfg = fermi_like(
            name="cli-bench", num_sms=1, max_warps_per_sm=8,
            max_ctas_per_sm=2, max_threads_per_sm=256,
            registers_per_sm=8192, dram_latency=60, l1_hit_latency=8,
        )
        monkeypatch.setattr(
            E, "FIGURE_SPECS",
            {"fig7": lambda: E.fig7_spec(("Gaussian",), cfg)},
        )

    def test_bench_fully_cached_gate_passes(self, capsys, tmp_path,
                                            monkeypatch):
        """Regression: a warm-cache run has no throughput number; the
        hard gate must warn and PASS, not fail CI as a regression."""
        self._tiny_fig7(monkeypatch)
        cache = str(tmp_path / "c.json")
        assert main([
            "--cache", cache, "bench",
            "--label", "warm", "--artifact-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        # Second run, same cache: every job is a cache hit.  Even
        # against an unbeatable baseline the gate must exit 0.
        import json
        artifact = json.loads((tmp_path / "BENCH_warm.json").read_text())
        fast = dict(artifact, totals=dict(
            artifact["totals"], cycles_per_sec=1e18))
        (tmp_path / "BENCH_fast.json").write_text(json.dumps(fast))
        assert main([
            "--cache", cache, "bench", "--no-artifact",
            "--baseline", str(tmp_path / "BENCH_fast.json"),
            "--fail-threshold", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "::error::" not in out
        assert "::warning::" in out and "inconclusive" in out

    def test_bench_history_and_noise_band_gate(self, capsys, tmp_path,
                                               monkeypatch):
        """--history appends a provenance-stamped journal entry;
        --gate fails the run only outside the machine's noise band."""
        import json

        from repro.dashboard.history import append_history, load_history

        self._tiny_fig7(monkeypatch)
        hist = str(tmp_path / "history.jsonl")
        assert main([
            "--cache", str(tmp_path / "c.json"), "bench", "--no-artifact",
            "--history", hist, "--commit", "abc123", "--machine", "box",
            "--engine", "scan", "--label", "ci",
        ]) == 0
        [entry] = load_history(hist)
        assert entry.sha == "abc123"
        assert entry.machine == "box"
        assert entry.engine == "scan"
        assert entry.cycles_per_sec is not None
        assert "fig7" in entry.figures  # headline metrics ride along
        capsys.readouterr()

        # Fabricate a history of impossibly fast same-machine runs:
        # the noise-band gate must trip (and still append the dip).
        fake = dict(entry.artifact, totals=dict(
            entry.artifact["totals"], cycles_per_sec=1e18))
        fast_hist = str(tmp_path / "fast.jsonl")
        for i in range(5):
            append_history(fast_hist, fake, sha=f"s{i}", machine="box",
                           timestamp=float(i))
        assert main([
            "--cache", str(tmp_path / "c2.json"), "bench", "--no-artifact",
            "--history", fast_hist, "--machine", "box", "--label", "ci",
            "--gate",
        ]) == 1
        out = capsys.readouterr().out
        assert "::error::" in out and "noise band" in out
        assert len(load_history(fast_hist)) == 6  # dip recorded anyway

        # Too little history: the gate is inconclusive, warns, passes.
        assert main([
            "--cache", str(tmp_path / "c2.json"), "bench", "--no-artifact",
            "--history", hist, "--machine", "box", "--label", "ci",
            "--gate",
        ]) == 0
        out = capsys.readouterr().out
        assert "::error::" not in out
        assert "::warning::" in out and "inconclusive" in out

        with pytest.raises(ValueError, match="--gate requires"):
            main([
                "--cache", str(tmp_path / "c.json"), "bench",
                "--no-artifact", "--gate",
            ])

    def test_dashboard_command(self, capsys, tmp_path, monkeypatch):
        """`repro dashboard` renders history + artifacts into one page."""
        self._tiny_fig7(monkeypatch)
        hist = str(tmp_path / "history.jsonl")
        assert main([
            "--cache", str(tmp_path / "c.json"), "bench",
            "--label", "ci", "--artifact-dir", str(tmp_path),
            "--history", hist, "--commit", "abc123", "--engine", "scan",
        ]) == 0
        capsys.readouterr()
        out_html = str(tmp_path / "dash.html")
        assert main([
            "dashboard", "--history", hist,
            "--artifacts", str(tmp_path / "BENCH_*.json"),
            "--out", out_html,
        ]) == 0
        assert "dashboard written" in capsys.readouterr().out
        page = open(out_html).read()
        assert page.startswith("<!DOCTYPE html>")
        assert "scan" in page  # the engine trend series
        assert "BENCH_ci.json" in page

    def test_run_single_app(self, capsys, tmp_path):
        # Mini end-to-end through the CLI; uses the real GTX480 but the
        # smallest app and the cache keeps re-runs free.
        assert main([
            "--cache", str(tmp_path / "c.json"),
            "run", "Gaussian", "--technique", "baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycles/CTA" in out
        assert "Gaussian" in out
