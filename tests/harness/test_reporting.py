"""Tests for ASCII reporting helpers."""

from repro.harness.reporting import format_percent_series, format_table, percent


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"],
            [["short", 1.23456], ["a-much-longer-name", 7]],
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        # All rows padded to the widest cell.
        assert "a-much-longer-name" in lines[3]
        assert "1.235" in lines[2]  # floats at 3 decimals

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"
        assert out.splitlines()[1] == "======="

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestPercentSeries:
    def test_bar_length_capped(self):
        out = format_percent_series("x", [0.5] * 500, width=40)
        bar = out.split("|")[1]
        assert len(bar) <= 45

    def test_min_max_reported(self):
        out = format_percent_series("x", [0.25, 0.75])
        assert "min=0.25" in out and "max=0.75" in out

    def test_empty(self):
        assert "empty" in format_percent_series("x", [])

    def test_out_of_range_clamped(self):
        out = format_percent_series("x", [-0.5, 1.5])
        assert "|" in out  # no crash


class TestPercent:
    def test_signed(self):
        assert percent(0.128) == "+12.8%"
        assert percent(-0.059) == "-5.9%"
