"""Disk-cache integrity: checksums, quarantine, corrupt-file backup."""

import json
import os
import warnings

import pytest

from repro.arch.config import fermi_like
from repro.harness.runner import CACHE_FORMAT_VERSION, ExperimentRunner
from repro.sim.technique import BaselineTechnique
from tests.conftest import straightline_kernel


@pytest.fixture
def cfg():
    return fermi_like(
        name="cache-test", num_sms=1, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


def _populate(path, cfg, kernels=(4, 12)):
    with ExperimentRunner(target_ctas_per_sm=2, cache_path=path) as runner:
        for n in kernels:
            runner.run(straightline_kernel(n), cfg, BaselineTechnique())


class TestCorruptFileBackup:
    def test_unparseable_cache_backed_up_not_destroyed(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w") as fh:
            fh.write("{definitely not json")
        with pytest.warns(UserWarning, match="unreadable"):
            runner = ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        backup = path + ".corrupt"
        assert os.path.exists(backup)
        with open(backup) as fh:
            assert fh.read() == "{definitely not json"  # evidence intact
        assert runner.cached is not None  # runner is usable
        assert runner.run(straightline_kernel(), cfg, BaselineTechnique())

    def test_truncated_v2_cache_backed_up(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        _populate(path, cfg)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.warns(UserWarning, match="unreadable"):
            ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        assert os.path.exists(path + ".corrupt")


class TestChecksumQuarantine:
    def test_poisoned_entry_quarantined_others_survive(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        _populate(path, cfg)
        with open(path) as fh:
            raw = json.load(fh)
        assert raw["__cache_format__"] == CACHE_FORMAT_VERSION
        victim = sorted(raw["entries"])[0]
        raw["entries"][victim]["record"]["cycles"] += 1  # checksum now stale
        with open(path, "w") as fh:
            json.dump(raw, fh)

        with pytest.warns(UserWarning, match="quarantined"):
            runner = ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        assert runner.quarantined_entries == 1
        assert len(runner._memo) == len(raw["entries"]) - 1  # rest kept
        quarantine = path + ".quarantine.json"
        assert os.path.exists(quarantine)
        with open(quarantine) as fh:
            assert victim in json.load(fh)

    def test_poisoned_entry_recomputed_and_reflushed(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        _populate(path, cfg, kernels=(4,))
        with open(path) as fh:
            raw = json.load(fh)
        key = next(iter(raw["entries"]))
        raw["entries"][key]["record"]["cycles"] += 1
        with open(path, "w") as fh:
            json.dump(raw, fh)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with ExperimentRunner(target_ctas_per_sm=2, cache_path=path) as r:
                record = r.run(straightline_kernel(4), cfg, BaselineTechnique())
        assert record.cycles > 0
        # The flushed cache holds the recomputed record with a valid sum.
        fresh = ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        assert fresh.quarantined_entries == 0
        assert fresh.cached(key) == record

    def test_clean_v2_cache_loads_without_warnings(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        _populate(path, cfg)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            runner = ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        assert len(runner._memo) == 2
        assert runner.quarantined_entries == 0


class TestLegacyFormatMigration:
    def test_v1_cache_upgraded_in_place(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        # Write a v2 cache, then strip it down to the legacy bare-dict
        # layout a pre-checksum session would have left behind.
        _populate(path, cfg, kernels=(4,))
        with open(path) as fh:
            raw = json.load(fh)
        legacy = {k: v["record"] for k, v in raw["entries"].items()}
        with open(path, "w") as fh:
            json.dump(legacy, fh)

        runner = ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        assert len(runner._memo) == 1       # legacy entries readable
        runner.flush()                      # dirty after migration
        with open(path) as fh:
            upgraded = json.load(fh)
        assert upgraded["__cache_format__"] == CACHE_FORMAT_VERSION
        for entry in upgraded["entries"].values():
            assert "checksum" in entry

    def test_v1_cache_with_bad_entry_quarantines_it(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        with open(path, "w") as fh:
            json.dump({"somekey": {"not": "a record"}}, fh)
        with pytest.warns(UserWarning, match="quarantined"):
            runner = ExperimentRunner(target_ctas_per_sm=2, cache_path=path)
        assert runner.quarantined_entries == 1
        assert not runner._memo
