"""Tests for the experiment runner (normalization + caching)."""

import pytest

from repro.arch.config import fermi_like
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.sim.technique import BaselineTechnique
from tests.conftest import looped_kernel, straightline_kernel


@pytest.fixture
def cfg():
    return fermi_like(
        name="runner-test", num_sms=2, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


class TestRunRecord:
    def _record(self, cpc):
        return RunRecord(
            kernel_name="k", config_name="c", technique="t", cycles=100,
            ctas_total=10, ctas_per_sm_resident=2, cycles_per_cta=cpc,
            theoretical_occupancy=0.5, acquire_attempts=10,
            acquire_successes=8, release_count=8, instructions_issued=1000,
            stall_acquire=0, stall_memory=0,
        )

    def test_reduction_and_increase_are_inverse(self):
        base, fast = self._record(100.0), self._record(80.0)
        assert fast.reduction_vs(base) == pytest.approx(0.2)
        assert fast.increase_vs(base) == pytest.approx(-0.2)

    def test_acquire_success_rate(self):
        assert self._record(1).acquire_success_rate == 0.8


class TestExperimentRunner:
    def test_run_produces_record(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert record.cycles > 0
        assert record.cycles_per_cta > 0
        assert record.ctas_total % cfg.num_sms == 0

    def test_whole_waves(self, cfg):
        """Grid is a whole multiple of residency per SM — no tails."""
        runner = ExperimentRunner(target_ctas_per_sm=6)
        record = runner.run(looped_kernel(), cfg, BaselineTechnique())
        per_sm = record.ctas_total // cfg.num_sms
        assert per_sm % record.ctas_per_sm_resident == 0

    def test_memoization(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        r1 = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        r2 = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert r1 is r2  # identical object: cache hit

    def test_distinct_kernels_not_conflated(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        r1 = runner.run(straightline_kernel(4), cfg, BaselineTechnique())
        r2 = runner.run(straightline_kernel(12), cfg, BaselineTechnique())
        assert r1.instructions_issued != r2.instructions_issued

    def test_disk_cache_roundtrip(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        first = ExperimentRunner(target_ctas_per_sm=4, cache_path=path)
        r1 = first.run(straightline_kernel(), cfg, BaselineTechnique())
        first.flush()
        fresh = ExperimentRunner(target_ctas_per_sm=4, cache_path=path)
        r2 = fresh.run(straightline_kernel(), cfg, BaselineTechnique())
        assert r1 == r2
        assert fresh.cache_hits == 1  # served from disk, not re-simulated

    def test_flush_is_deferred_until_requested(self, cfg, tmp_path):
        import os
        path = str(tmp_path / "cache.json")
        runner = ExperimentRunner(target_ctas_per_sm=4, cache_path=path)
        runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert not os.path.exists(path)  # no write-per-run
        runner.flush()
        assert os.path.exists(path)

    def test_context_manager_flushes_on_exit(self, cfg, tmp_path):
        import os
        path = str(tmp_path / "cache.json")
        with ExperimentRunner(target_ctas_per_sm=4, cache_path=path) as r:
            r.run(straightline_kernel(), cfg, BaselineTechnique())
        assert os.path.exists(path)

    def test_corrupt_cache_tolerated(self, cfg, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        runner = ExperimentRunner(target_ctas_per_sm=4, cache_path=str(path))
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert record.cycles > 0

    def test_seed_in_cache_key(self, cfg):
        from tests.sim.test_gpu import memory_kernel
        a = ExperimentRunner(target_ctas_per_sm=4, seed=1).run(
            memory_kernel(), cfg, BaselineTechnique()
        )
        b = ExperimentRunner(target_ctas_per_sm=4, seed=2).run(
            memory_kernel(), cfg, BaselineTechnique()
        )
        assert a.cycles != b.cycles


class TestCacheKeyStability:
    """Cache keys must depend on every config field and every declared
    technique parameter — and on nothing incidental (like dataclass
    repr formatting or attribute declaration order)."""

    def test_any_config_field_change_invalidates(self, cfg):
        import dataclasses
        runner = ExperimentRunner(target_ctas_per_sm=4)
        kernel = straightline_kernel()
        base_key = runner.key_for(kernel, cfg, BaselineTechnique())
        for field in ("num_sms", "max_warps_per_sm", "registers_per_sm",
                      "dram_latency"):
            bumped = dataclasses.replace(cfg, **{field: getattr(cfg, field) * 2})
            assert runner.key_for(kernel, bumped, BaselineTechnique()) != \
                base_key, field

    def test_technique_param_change_invalidates(self, cfg):
        from repro.regmutex.issue_logic import RegMutexTechnique
        runner = ExperimentRunner(target_ctas_per_sm=4)
        kernel = straightline_kernel()
        keys = {
            runner.key_for(kernel, cfg, RegMutexTechnique(extended_set_size=es))
            for es in (4, 6, 8)
        }
        assert len(keys) == 3
        assert runner.key_for(kernel, cfg, BaselineTechnique()) not in keys

    def test_key_is_deterministic_across_runners(self, cfg):
        kernel = straightline_kernel()
        a = ExperimentRunner(target_ctas_per_sm=4)
        b = ExperimentRunner(target_ctas_per_sm=4)
        assert a.key_for(kernel, cfg, BaselineTechnique()) == \
            b.key_for(kernel, cfg, BaselineTechnique())

    def test_hit_miss_counters(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        runner.run(straightline_kernel(), cfg, BaselineTechnique())
        runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert runner.cache_misses == 1
        assert runner.cache_hits == 1


class TestCacheKeyHygiene:
    """Timing-neutral knobs — engine selection and the sanitizer
    family — must never perturb v6 fingerprints: flipping them on a
    cached experiment must hit the same record, not orphan it."""

    def test_neutral_fields_are_real_config_fields(self):
        import dataclasses

        from repro.arch.config import GpuConfig
        from repro.harness.runner import _TIMING_NEUTRAL_CONFIG_FIELDS

        names = {f.name for f in dataclasses.fields(GpuConfig)}
        assert _TIMING_NEUTRAL_CONFIG_FIELDS <= names

    def test_engine_and_sanitizer_knobs_do_not_move_the_key(self, cfg):
        import dataclasses
        runner = ExperimentRunner(target_ctas_per_sm=4)
        kernel = straightline_kernel()
        base_key = runner.key_for(kernel, cfg, BaselineTechnique())
        for overrides in (
            {"issue_engine": "scan"},
            {"issue_engine": "event"},
            {"issue_engine": "columnar"},
            {"issue_engine": "native"},
            {"sanitizer": True},
            {"sanitizer_stride": 64},
            {"issue_engine": "columnar", "sanitizer": True,
             "sanitizer_stride": 7},
            {"issue_engine": "native", "sanitizer": True,
             "sanitizer_stride": 7},
        ):
            flipped = dataclasses.replace(cfg, **overrides)
            assert runner.key_for(kernel, flipped, BaselineTechnique()) == \
                base_key, overrides

    def test_columnar_run_hits_event_runs_cache(self, cfg):
        import dataclasses
        runner = ExperimentRunner(target_ctas_per_sm=4)
        kernel = straightline_kernel()
        runner.run(kernel, dataclasses.replace(cfg, issue_engine="event"),
                   BaselineTechnique())
        runner.run(kernel, dataclasses.replace(cfg, issue_engine="columnar"),
                   BaselineTechnique())
        assert runner.cache_misses == 1
        assert runner.cache_hits == 1

    def test_native_run_hits_event_runs_cache(self, cfg):
        """issue_engine="native" lands on the same v6 entry an event run
        populated — the C extension is a timing-neutral accelerator, not
        a different experiment."""
        import dataclasses
        runner = ExperimentRunner(target_ctas_per_sm=4)
        kernel = straightline_kernel()
        runner.run(kernel, dataclasses.replace(cfg, issue_engine="event"),
                   BaselineTechnique())
        runner.run(kernel, dataclasses.replace(cfg, issue_engine="native"),
                   BaselineTechnique())
        assert runner.cache_misses == 1
        assert runner.cache_hits == 1


class TestCacheFormatContract:
    """The on-disk cache format must stay loadable across sessions: every
    RunRecord field is JSON-serializable and the loader tolerates extra
    or missing keys only by falling back to recomputation."""

    def test_record_is_json_round_trippable(self, cfg):
        import dataclasses, json
        runner = ExperimentRunner(target_ctas_per_sm=4)
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        blob = json.dumps(dataclasses.asdict(record))
        back = RunRecord(**json.loads(blob))
        assert back == record

    def test_stale_schema_triggers_recompute(self, cfg, tmp_path):
        import json
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"somekey": {"not": "a record"}}))
        runner = ExperimentRunner(target_ctas_per_sm=4, cache_path=str(path))
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert record.cycles > 0


class TestCacheKeyVersion:
    def test_version_pinned(self):
        """The oracle in repro.check proves checker/observer additions
        timing-neutral; the key only moves when semantics do.  A failure
        here means someone bumped it — make sure that was deliberate
        (it invalidates every cached run everywhere)."""
        from repro.harness.runner import CACHE_KEY_VERSION

        assert CACHE_KEY_VERSION == "v6"
