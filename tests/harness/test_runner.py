"""Tests for the experiment runner (normalization + caching)."""

import pytest

from repro.arch.config import fermi_like
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.sim.technique import BaselineTechnique
from tests.conftest import looped_kernel, straightline_kernel


@pytest.fixture
def cfg():
    return fermi_like(
        name="runner-test", num_sms=2, max_warps_per_sm=8, max_ctas_per_sm=4,
        max_threads_per_sm=256, registers_per_sm=4096,
        dram_latency=60, l1_hit_latency=8,
    )


class TestRunRecord:
    def _record(self, cpc):
        return RunRecord(
            kernel_name="k", config_name="c", technique="t", cycles=100,
            ctas_total=10, ctas_per_sm_resident=2, cycles_per_cta=cpc,
            theoretical_occupancy=0.5, acquire_attempts=10,
            acquire_successes=8, release_count=8, instructions_issued=1000,
            stall_acquire=0, stall_memory=0,
        )

    def test_reduction_and_increase_are_inverse(self):
        base, fast = self._record(100.0), self._record(80.0)
        assert fast.reduction_vs(base) == pytest.approx(0.2)
        assert fast.increase_vs(base) == pytest.approx(-0.2)

    def test_acquire_success_rate(self):
        assert self._record(1).acquire_success_rate == 0.8


class TestExperimentRunner:
    def test_run_produces_record(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert record.cycles > 0
        assert record.cycles_per_cta > 0
        assert record.ctas_total % cfg.num_sms == 0

    def test_whole_waves(self, cfg):
        """Grid is a whole multiple of residency per SM — no tails."""
        runner = ExperimentRunner(target_ctas_per_sm=6)
        record = runner.run(looped_kernel(), cfg, BaselineTechnique())
        per_sm = record.ctas_total // cfg.num_sms
        assert per_sm % record.ctas_per_sm_resident == 0

    def test_memoization(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        r1 = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        r2 = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert r1 is r2  # identical object: cache hit

    def test_distinct_kernels_not_conflated(self, cfg):
        runner = ExperimentRunner(target_ctas_per_sm=4)
        r1 = runner.run(straightline_kernel(4), cfg, BaselineTechnique())
        r2 = runner.run(straightline_kernel(12), cfg, BaselineTechnique())
        assert r1.instructions_issued != r2.instructions_issued

    def test_disk_cache_roundtrip(self, cfg, tmp_path):
        path = str(tmp_path / "cache.json")
        r1 = ExperimentRunner(target_ctas_per_sm=4, cache_path=path).run(
            straightline_kernel(), cfg, BaselineTechnique()
        )
        fresh = ExperimentRunner(target_ctas_per_sm=4, cache_path=path)
        r2 = fresh.run(straightline_kernel(), cfg, BaselineTechnique())
        assert r1 == r2

    def test_corrupt_cache_tolerated(self, cfg, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        runner = ExperimentRunner(target_ctas_per_sm=4, cache_path=str(path))
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert record.cycles > 0

    def test_seed_in_cache_key(self, cfg):
        from tests.sim.test_gpu import memory_kernel
        a = ExperimentRunner(target_ctas_per_sm=4, seed=1).run(
            memory_kernel(), cfg, BaselineTechnique()
        )
        b = ExperimentRunner(target_ctas_per_sm=4, seed=2).run(
            memory_kernel(), cfg, BaselineTechnique()
        )
        assert a.cycles != b.cycles


class TestCacheFormatContract:
    """The on-disk cache format must stay loadable across sessions: every
    RunRecord field is JSON-serializable and the loader tolerates extra
    or missing keys only by falling back to recomputation."""

    def test_record_is_json_round_trippable(self, cfg):
        import dataclasses, json
        runner = ExperimentRunner(target_ctas_per_sm=4)
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        blob = json.dumps(dataclasses.asdict(record))
        back = RunRecord(**json.loads(blob))
        assert back == record

    def test_stale_schema_triggers_recompute(self, cfg, tmp_path):
        import json
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"somekey": {"not": "a record"}}))
        runner = ExperimentRunner(target_ctas_per_sm=4, cache_path=str(path))
        record = runner.run(straightline_kernel(), cfg, BaselineTechnique())
        assert record.cycles > 0
