"""Tests for the declarative spec layer (no simulation: stubbed runner)."""

from __future__ import annotations

import pickle

import pytest

from repro.arch.config import GTX480, GpuConfig
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.harness import experiments as E
from repro.harness.runner import RunRecord
from repro.harness.spec import (
    ExperimentSpec,
    JobFailure,
    JobResults,
    JobSpec,
    TechniqueSpec,
    run_experiment,
)
from repro.regmutex.issue_logic import RegMutexTechnique


def _record(name="k", config="c", technique="baseline", cycles=1000):
    return RunRecord(
        kernel_name=name, config_name=config, technique=technique,
        cycles=cycles, ctas_total=10, ctas_per_sm_resident=2,
        cycles_per_cta=float(cycles), theoretical_occupancy=0.75,
        acquire_attempts=10, acquire_successes=9, release_count=9,
        instructions_issued=100, stall_acquire=0, stall_memory=0,
    )


class TestTechniqueSpec:
    def test_build_constructs_registered_technique(self):
        spec = TechniqueSpec.of("regmutex", extended_set_size=6)
        technique = spec.build()
        assert isinstance(technique, RegMutexTechnique)
        assert technique.extended_set_size == 6

    def test_params_are_sorted_for_stable_identity(self):
        a = TechniqueSpec.of("regmutex", extended_set_size=6,
                             retry_policy="eager")
        b = TechniqueSpec.of("regmutex", retry_policy="eager",
                             extended_set_size=6)
        assert a == b and hash(a) == hash(b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            TechniqueSpec.of("warp-vodoo")

    def test_owf_carries_scheduler_priority(self):
        spec = TechniqueSpec.of("owf")
        assert isinstance(spec.build(), OwfTechnique)
        assert spec.scheduler_priority() is owf_priority
        assert TechniqueSpec.of("baseline").scheduler_priority() is None

    def test_str_form(self):
        assert str(TechniqueSpec.of("baseline")) == "baseline"
        assert str(TechniqueSpec.of("regmutex", extended_set_size=6)) == (
            "regmutex(extended_set_size=6)"
        )

    def test_picklable(self):
        job = JobSpec("BFS", GTX480, TechniqueSpec.of(
            "regmutex", extended_set_size=6
        ))
        assert pickle.loads(pickle.dumps(job)) == job


class TestJobSpec:
    def test_hashable_dedup(self):
        a = JobSpec("BFS", GTX480, TechniqueSpec.of("baseline"))
        b = JobSpec("BFS", GTX480, TechniqueSpec.of("baseline"))
        c = JobSpec("SAD", GTX480, TechniqueSpec.of("baseline"))
        assert len({a, b, c}) == 2

    def test_label(self):
        job = JobSpec("BFS", GTX480, TechniqueSpec.of(
            "regmutex", extended_set_size=6
        ))
        assert job.label == "BFS/GTX480/regmutex(extended_set_size=6)"


class TestJobResults:
    def test_failure_surfaces_on_access(self):
        job = JobSpec("BFS", GTX480, TechniqueSpec.of("baseline"))
        results = JobResults({job: JobFailure("does not fit")})
        assert results.failed(job)
        assert results.error(job) == "does not fit"
        with pytest.raises(RuntimeError, match="does not fit"):
            results[job]

    def test_success_passthrough(self):
        job = JobSpec("BFS", GTX480, TechniqueSpec.of("baseline"))
        record = _record()
        results = JobResults({job: record})
        assert results[job] is record
        assert not results.failed(job)
        assert results.error(job) is None


class RecordingRunner:
    """Returns canned records; logs (kernel, config, technique) calls."""

    def __init__(self):
        self.calls = []

    def run(self, kernel, config, technique=None, scheduler_priority=None):
        name = technique.name if technique else "baseline"
        self.calls.append((kernel.name, config.name, name))
        return _record(kernel.name, config.name, name,
                       cycles=880 if name == "regmutex" else 1000)


class TestExperimentSpec:
    def test_unique_jobs_preserves_declared_order(self):
        base = JobSpec("BFS", GTX480, TechniqueSpec.of("baseline"))
        rm = JobSpec("BFS", GTX480, TechniqueSpec.of(
            "regmutex", extended_set_size=6
        ))
        spec = ExperimentSpec("x", (base, rm, base), lambda r: [])
        assert spec.unique_jobs() == (base, rm)

    def test_run_experiment_executes_in_declared_order(self):
        runner = RecordingRunner()
        rows = run_experiment(E.fig7_spec(apps=("BFS",)), runner)
        assert [c[2] for c in runner.calls] == ["baseline", "regmutex"]
        (row,) = rows
        assert row.cycle_reduction == pytest.approx(0.12)

    def test_run_experiment_skips_repeated_jobs(self):
        base = JobSpec("BFS", GTX480, TechniqueSpec.of("baseline"))
        spec = ExperimentSpec("x", (base, base), lambda r: len(r))
        runner = RecordingRunner()
        assert run_experiment(spec, runner) == 1
        assert len(runner.calls) == 1


class TestFigureSpecRegistry:
    def test_every_simulated_figure_is_declared(self):
        assert set(E.FIGURE_SPECS) == {
            "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11",
            "fig12a", "fig12b", "fig13",
        }

    def test_builders_produce_specs_with_jobs(self):
        for name, build in E.FIGURE_SPECS.items():
            spec = build()
            assert spec.jobs, name
            assert all(isinstance(j, JobSpec) for j in spec.jobs)

    def test_suite_job_set_deduplicates_across_figures(self):
        all_jobs = [
            job for build in E.FIGURE_SPECS.values()
            for job in build().jobs
        ]
        unique = set(all_jobs)
        # Baselines (and the forced-|Es| RegMutex runs) recur across
        # figures; the orchestrator's dedup is what makes the suite
        # cheaper than the sum of its figures.
        assert len(unique) < len(all_jobs)

    def test_fig13_covers_all_sixteen_apps(self):
        spec = E.FIGURE_SPECS["fig13"]()
        assert len({j.app for j in spec.jobs}) == 16
