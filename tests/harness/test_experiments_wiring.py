"""Wiring tests for the experiment drivers, using a stubbed runner.

The benchmark suite exercises the drivers against the real simulator;
these tests pin the *plumbing* — which technique each driver runs on
which architecture, and how rows are derived from records — without
paying for simulation.
"""

from __future__ import annotations

import pytest

from repro.arch.config import GTX480
from repro.harness import experiments as E
from repro.harness.runner import RunRecord


class StubRunner:
    """Returns canned records and logs every (kernel, config, technique)."""

    def __init__(self):
        self.calls: list[tuple[str, str, str]] = []

    def run(self, kernel, config, technique=None, scheduler_priority=None):
        name = technique.name if technique else "baseline"
        self.calls.append((kernel.name, config.name, name))
        # Cycles keyed by technique so reductions are deterministic.
        cycles = {
            "baseline": 1000.0,
            "regmutex": 880.0,
            "regmutex-paired": 920.0,
            "owf": 990.0,
            "rfv": 850.0,
        }[name]
        return RunRecord(
            kernel_name=kernel.name,
            config_name=config.name,
            technique=name,
            cycles=int(cycles),
            ctas_total=10,
            ctas_per_sm_resident=2,
            cycles_per_cta=cycles,
            theoretical_occupancy=0.75 if name == "baseline" else 1.0,
            acquire_attempts=100,
            acquire_successes=90,
            release_count=90,
            instructions_issued=10_000,
            stall_acquire=5,
            stall_memory=50,
        )


@pytest.fixture
def stub():
    return StubRunner()


class TestFig7Wiring:
    def test_runs_baseline_and_regmutex_on_full_rf(self, stub):
        rows = E.fig7_occupancy_boost(stub, apps=("BFS",))
        assert [c[2] for c in stub.calls] == ["baseline", "regmutex"]
        assert all(c[1] == GTX480.name for c in stub.calls)
        (row,) = rows
        assert row.cycle_reduction == pytest.approx(0.12)
        assert row.occupancy_init == 0.75
        assert row.occupancy_regmutex == 1.0

    def test_acquire_rate_propagated(self, stub):
        (row,) = E.fig7_occupancy_boost(stub, apps=("BFS",))
        assert row.acquire_success_rate == pytest.approx(0.9)


class TestFig8Wiring:
    def test_configs(self, stub):
        E.fig8_half_register_file(stub, apps=("Gaussian",))
        configs = [c[1] for c in stub.calls]
        assert configs[0] == GTX480.name          # full-file reference
        assert all("half" in c.lower() for c in configs[1:])

    def test_increase_vs_full_reference(self, stub):
        (row,) = E.fig8_half_register_file(stub, apps=("Gaussian",))
        # Stub gives every baseline 1000 cycles regardless of config,
        # so the bare increase is zero and RegMutex shows its gain.
        assert row.increase_no_technique == pytest.approx(0.0)
        assert row.increase_regmutex == pytest.approx(-0.12)


class TestFig9Wiring:
    def test_three_techniques_plus_base(self, stub):
        E.fig9a_comparison_baseline(stub, apps=("BFS",))
        assert [c[2] for c in stub.calls] == [
            "baseline", "owf", "rfv", "regmutex"
        ]

    def test_reductions(self, stub):
        (row,) = E.fig9a_comparison_baseline(stub, apps=("BFS",))
        assert row.reduction_owf == pytest.approx(0.01)
        assert row.reduction_rfv == pytest.approx(0.15)
        assert row.reduction_regmutex == pytest.approx(0.12)

    def test_9b_runs_on_half_rf(self, stub):
        E.fig9b_comparison_half_rf(stub, apps=("Gaussian",))
        assert sum("half" in c[1].lower() for c in stub.calls) == 4


class TestFig10And11Wiring:
    def test_sweep_covers_all_es(self, stub):
        rows = E.fig10_es_sensitivity(stub, apps=("BFS",))
        assert [r.es for r in rows] == list(E.ES_SWEEP)
        assert sum(r.is_heuristic_pick for r in rows) == 1

    def test_fig11_active_flag(self, stub):
        rows = E.fig11_occupancy_and_acquires(stub, apps=("BFS",))
        assert all(r.active for r in rows)  # stub always reports acquires


class TestFig12And13Wiring:
    def test_12a_uses_paired_and_default(self, stub):
        E.fig12_paired_warps(stub, half_rf=False)
        techniques = {c[2] for c in stub.calls}
        assert {"baseline", "regmutex", "regmutex-paired"} <= techniques

    def test_13_covers_all_sixteen(self, stub):
        rows = E.fig13_acquire_success(stub)
        assert len(rows) == 16
