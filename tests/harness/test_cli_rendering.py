"""CLI figure-command rendering tests with stubbed experiment drivers.

The real drivers are exercised by the benchmark suite; these tests pin
the CLI's table rendering and argument plumbing for every figure
subcommand without simulation.
"""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro.harness.experiments import (
    Fig7Row, Fig8Row, Fig9aRow, Fig9bRow, Fig10Row, Fig11Row,
    Fig12Row, Fig13Row,
)


@pytest.fixture(autouse=True)
def stub_experiments(monkeypatch):
    monkeypatch.setattr(
        cli.E, "fig7_occupancy_boost",
        lambda runner, **kw: [Fig7Row("BFS", 0.254, 0.75, 1.0, 1.0)],
    )
    monkeypatch.setattr(
        cli.E, "fig8_half_register_file",
        lambda runner, **kw: [Fig8Row("Gaussian", 0.22, -0.003, 0.83, 1.0)],
    )
    monkeypatch.setattr(
        cli.E, "fig9a_comparison_baseline",
        lambda runner, **kw: [Fig9aRow("BFS", 0.0, 0.25, 0.25)],
    )
    monkeypatch.setattr(
        cli.E, "fig9b_comparison_half_rf",
        lambda runner, **kw: [Fig9bRow("SPMV", 0.19, 0.19, 0.0, 0.0)],
    )
    monkeypatch.setattr(
        cli.E, "fig10_es_sensitivity",
        lambda runner, **kw: [Fig10Row("BFS", 6, 0.254, True)],
    )
    monkeypatch.setattr(
        cli.E, "fig11_occupancy_and_acquires",
        lambda runner, **kw: [Fig11Row("BFS", 6, 1.0, 1.0, True)],
    )
    monkeypatch.setattr(
        cli.E, "fig12_paired_warps",
        lambda runner, half_rf=False: [Fig12Row("SAD", 0.08, 0.67, 0.12)],
    )
    monkeypatch.setattr(
        cli.E, "fig13_acquire_success",
        lambda runner: [Fig13Row("SAD", "baseline", 0.51, 0.85)],
    )


@pytest.mark.parametrize("command,needle", [
    ("fig7", "+25.4%"),
    ("fig8", "Gaussian"),
    ("fig9a", "RegMutex"),
    ("fig9b", "SPMV"),
    ("fig10", "heuristic pick"),
    ("fig11", "acquire success"),
    ("fig12a", "paired reduction"),
    ("fig12b", "paired increase"),
    ("fig13", "baseline"),
])
def test_figure_commands_render(command, needle, capsys, tmp_path):
    assert cli.main(["--cache", str(tmp_path / "c.json"), command]) == 0
    assert needle in capsys.readouterr().out


def test_csv_flag_on_stubbed_rows(tmp_path, capsys):
    path = str(tmp_path / "rows.csv")
    assert cli.main(
        ["--cache", str(tmp_path / "c.json"), "fig7", "--csv", path]
    ) == 0
    from repro.harness.export import read_csv_rows
    rows = read_csv_rows(path)
    assert rows[0]["app"] == "BFS"
