"""Crash-safety of the shared run store: journal, lock, and recovery.

The run store's durability contract has three legs:

1. every computed record is write-ahead journaled (one fsync'd line)
   *before* the session flush, so a crash between compute and
   ``flush()`` loses nothing;
2. the journal and the cache rewrite are serialized by an advisory
   file lock, so concurrent processes sharing one cache path never
   tear each other's bytes or lose each other's entries;
3. damage is contained: a torn journal tail is left unconsumed, a
   corrupt line is skipped, and neither aborts the session.

These tests exercise all three with real processes where the contract
is about processes, and with two in-process runners where it is about
the merge logic.
"""

from __future__ import annotations

import dataclasses
import json
import os
from concurrent.futures import ProcessPoolExecutor

from repro.harness.runner import ExperimentRunner
from repro.sim.technique import BaselineTechnique
from tests.conftest import straightline_kernel


def _tiny_config(name="cc-tiny"):
    from repro.arch.config import fermi_like

    return fermi_like(
        name=name,
        num_sms=1,
        max_warps_per_sm=8,
        max_ctas_per_sm=4,
        max_threads_per_sm=256,
        registers_per_sm=4096,
        shared_mem_per_sm=16 * 1024,
        dram_latency=80,
        l1_hit_latency=10,
    )


def _runner(path):
    return ExperimentRunner(target_ctas_per_sm=2, seed=11, cache_path=path)


def _compute(runner, name):
    return runner.run(
        straightline_kernel(), _tiny_config(name), BaselineTechnique()
    )


def _stress_worker(path: str, worker_id: int, entries: int) -> int:
    """Process-pool entry point: journal + flush ``entries`` distinct
    records against the shared cache, flushing after every record for
    maximal lock contention."""
    runner = _runner(path)
    for i in range(entries):
        _compute(runner, f"cc-{worker_id}-{i}")
        runner.flush()
    return entries


class TestJournalRecovery:
    def test_unflushed_record_survives_a_crash(self, tmp_path):
        path = str(tmp_path / "cache.json")
        crashed = _runner(path)
        record = _compute(crashed, "crashy")
        # The "crash": the runner is dropped without flush().  The
        # journal already holds the record, fsync'd.
        assert os.path.exists(path + ".journal")
        assert not os.path.exists(path)

        survivor = _runner(path)
        assert _compute(survivor, "crashy") == record
        assert survivor.cache_hits == 1
        assert survivor.cache_misses == 0

    def test_flush_folds_journal_into_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        crashed = _runner(path)
        _compute(crashed, "crashy")

        survivor = _runner(path)
        survivor.flush()
        assert not os.path.exists(path + ".journal")
        with open(path) as fh:
            assert len(json.load(fh)["entries"]) == 1

    def test_torn_tail_left_unconsumed(self, tmp_path):
        path = str(tmp_path / "cache.json")
        writer = _runner(path)
        _compute(writer, "whole-a")
        _compute(writer, "whole-b")
        with open(path + ".journal", "a") as fh:
            fh.write('{"key": "torn-entry", "rec')  # no newline: mid-append

        survivor = _runner(path)
        assert len(survivor._memo) == 2
        assert survivor.quarantined_entries == 0
        # The torn bytes are still on disk for the writer's retry.
        with open(path + ".journal") as fh:
            assert fh.read().endswith('"rec')

    def test_corrupt_complete_line_skipped(self, tmp_path):
        path = str(tmp_path / "cache.json")
        writer = _runner(path)
        _compute(writer, "honest")
        with open(path + ".journal", "a") as fh:
            fh.write("this is not json\n")
            fh.write('{"key": "bad-checksum", "record": {}, '
                     '"checksum": "nope"}\n')

        survivor = _runner(path)
        assert len(survivor._memo) == 1
        assert survivor.quarantined_entries == 0

    def test_miss_path_adopts_a_peer_journal_entry(self, tmp_path):
        # Two runners share the path *in the same process*: B opened
        # before A computed, so B's memo is stale — the miss path must
        # re-read the journal instead of recomputing.
        path = str(tmp_path / "cache.json")
        a = _runner(path)
        b = _runner(path)
        record = _compute(a, "late-arrival")
        assert _compute(b, "late-arrival") == record
        assert b.cache_hits == 1
        assert b.cache_misses == 0


class TestConcurrentWriters:
    def test_in_process_flushes_merge_not_clobber(self, tmp_path):
        path = str(tmp_path / "cache.json")
        a = _runner(path)
        b = _runner(path)
        _compute(a, "from-a")
        _compute(b, "from-b")
        a.flush()
        b.flush()  # must fold a's flushed entry back in, not overwrite

        survivor = _runner(path)
        assert len(survivor._memo) == 2
        assert survivor.quarantined_entries == 0

    def test_two_process_stress_loses_nothing(self, tmp_path):
        path = str(tmp_path / "cache.json")
        writers, entries = 2, 3
        with ProcessPoolExecutor(max_workers=writers) as pool:
            futures = [
                pool.submit(_stress_worker, path, wid, entries)
                for wid in range(writers)
            ]
            written = sum(f.result() for f in futures)
        assert written == writers * entries

        survivor = _runner(path)
        assert len(survivor._memo) == writers * entries
        assert survivor.quarantined_entries == 0
        names = {r.config_name for r in survivor._memo.values()}
        assert names == {
            f"cc-{w}-{i}" for w in range(writers) for i in range(entries)
        }

    def test_stressed_cache_file_is_well_formed(self, tmp_path):
        path = str(tmp_path / "cache.json")
        with ProcessPoolExecutor(max_workers=2) as pool:
            for f in [
                pool.submit(_stress_worker, path, wid, 2) for wid in range(2)
            ]:
                f.result()
        with open(path) as fh:
            raw = json.load(fh)  # a torn write would fail right here
        assert raw["__cache_format__"] == 2
        assert len(raw["entries"]) == 4

    def test_identical_work_is_computed_once_then_shared(self, tmp_path):
        # Same (kernel, config, technique) from two runners: the second
        # adopts the first's journaled record rather than recomputing.
        path = str(tmp_path / "cache.json")
        first = _runner(path)
        _compute(first, "shared-key")
        assert first.cache_misses == 1

        second = _runner(path)
        _compute(second, "shared-key")
        assert second.cache_misses == 0
        assert second.cache_hits == 1
