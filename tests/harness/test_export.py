"""Tests for CSV export of experiment rows."""

import dataclasses

import pytest

from repro.harness.export import read_csv_rows, rows_to_csv


@dataclasses.dataclass(frozen=True)
class FakeRow:
    app: str
    value: float
    flag: bool
    series: tuple[float, ...] = ()


class TestRowsToCsv:
    def test_roundtrip(self, tmp_path):
        rows = [
            FakeRow("BFS", 0.254, True, (0.5, 0.75)),
            FakeRow("SAD", 0.078, False, ()),
        ]
        path = str(tmp_path / "out.csv")
        header = rows_to_csv(rows, path)
        assert header == ["app", "value", "flag", "series"]
        back = read_csv_rows(path)
        assert back[0]["app"] == "BFS"
        assert float(back[0]["value"]) == pytest.approx(0.254)
        assert back[0]["flag"] == "1"
        assert back[0]["series"] == "0.5;0.75"
        assert back[1]["flag"] == "0"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv([], str(tmp_path / "x.csv"))

    def test_non_dataclass_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            rows_to_csv([{"a": 1}], str(tmp_path / "x.csv"))

    def test_mixed_types_rejected(self, tmp_path):
        @dataclasses.dataclass(frozen=True)
        class Other:
            x: int

        with pytest.raises(TypeError, match="mixed"):
            rows_to_csv([FakeRow("a", 1.0, True), Other(1)],
                        str(tmp_path / "x.csv"))

    def test_real_experiment_rows_export(self, tmp_path):
        from repro.harness.experiments import fig1_liveness_traces
        rows = fig1_liveness_traces(apps=("SAD",))
        path = str(tmp_path / "fig1.csv")
        rows_to_csv(rows, path)
        back = read_csv_rows(path)
        assert back[0]["app"] == "SAD"
        assert ";" in back[0]["utilization_series"]

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "fig1.csv")
        assert main(["fig1", "--apps", "SAD", "--csv", path]) == 0
        assert read_csv_rows(path)
