"""Orchestrator integration tests: real simulations on a small config.

The config below is sized so each job simulates in well under a second
while still exercising multi-SM launch, the memory system, and the
RegMutex issue logic.
"""

from __future__ import annotations

import pytest

from repro.arch.config import fermi_like
from repro.harness import experiments as E
from repro.harness.orchestrator import Orchestrator
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import (
    JobFailure,
    JobSpec,
    TechniqueSpec,
    materialize_job,
    run_experiment,
)

CFG = fermi_like(
    name="orch-test",
    num_sms=2,
    max_warps_per_sm=16,
    max_ctas_per_sm=4,
    max_threads_per_sm=512,
    registers_per_sm=8192,
    dram_latency=60,
    l1_hit_latency=8,
)
APPS = ("Gaussian", "MergeSort")


def _specs():
    # fig8 re-requests Gaussian's full-RF baseline, which fig7 already
    # declares — exercises cross-spec dedup.
    return [E.fig7_spec(APPS, CFG), E.fig8_spec(("Gaussian",), CFG)]


def _runner(**kw):
    return ExperimentRunner(target_ctas_per_sm=4, **kw)


class TestDeterminism:
    def test_parallel_rows_bit_identical_to_serial(self):
        serial = Orchestrator(_runner(), workers=1)
        parallel = Orchestrator(_runner(), workers=4)
        rows_serial = serial.run_specs(_specs())
        rows_parallel = parallel.run_specs(_specs())
        # Row dataclasses are frozen and compare by value, so equality
        # here means every RunRecord-derived field matches bit-for-bit.
        assert rows_serial == rows_parallel
        assert set(rows_serial) == {"fig7", "fig8"}
        assert len(rows_serial["fig7"]) == len(APPS)

    def test_pool_records_match_direct_runner_run(self):
        job = JobSpec("Gaussian", CFG, TechniqueSpec.of("baseline"))
        rm = JobSpec("Gaussian", CFG,
                     TechniqueSpec.of("regmutex", extended_set_size=4))
        outcomes = Orchestrator(_runner(), workers=2).run_jobs([job, rm])

        direct = _runner()
        for spec in (job, rm):
            kernel, technique, priority = materialize_job(spec)
            record = direct.run(kernel, spec.config, technique,
                                scheduler_priority=priority)
            assert outcomes[spec] == record
            assert isinstance(outcomes[spec], RunRecord)

    def test_orchestrated_rows_match_plain_run_experiment(self):
        spec = E.fig7_spec(("Gaussian",), CFG)
        plain = run_experiment(spec, _runner())
        orchestrated = Orchestrator(_runner(), workers=2).run_specs(
            [spec]
        )[spec.name]
        assert plain == orchestrated


class TestDedupAndTelemetry:
    def test_cross_spec_dedup_and_hit_miss_counts(self):
        runner = _runner()
        orch = Orchestrator(runner, workers=4)
        orch.run_specs(_specs())

        declared = sum(len(s.jobs) for s in _specs())   # 4 + 3
        unique = len({j for s in _specs() for j in s.jobs})
        assert declared == 7 and unique == 6

        t = orch.telemetry
        assert t.jobs_total == unique
        assert t.cache_hits == 0
        assert t.cache_misses == unique
        assert t.failures == 0
        assert t.wall_seconds > 0
        assert t.sim_seconds > 0
        assert 0.0 < t.utilization() <= 1.0
        assert runner.cache_misses == unique

        # Same suite again through the same runner: pure cache replay.
        again = Orchestrator(runner, workers=4)
        again.run_specs(_specs())
        assert again.telemetry.cache_hits == unique
        assert again.telemetry.cache_misses == 0

    def test_slowest_ranks_by_duration(self):
        orch = Orchestrator(_runner(), workers=1)
        orch.run_specs([E.fig7_spec(("Gaussian",), CFG)])
        top = orch.telemetry.slowest(2)
        assert len(top) == 2
        assert top[0].seconds >= top[1].seconds


class TestCacheMerge:
    def test_pool_results_persist_for_fresh_runner(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        spec = E.fig7_spec(("Gaussian",), CFG)

        first = Orchestrator(_runner(cache_path=cache), workers=2)
        rows_first = first.run_specs([spec])[spec.name]

        fresh = Orchestrator(_runner(cache_path=cache), workers=2)
        rows_fresh = fresh.run_specs([spec])[spec.name]
        assert rows_fresh == rows_first
        assert fresh.telemetry.cache_misses == 0
        assert fresh.telemetry.cache_hits == len(spec.jobs)


class TestFailureTolerance:
    def test_unplaceable_job_becomes_failure(self):
        # One CTA of LavaMD needs more registers than this SM has.
        tiny = fermi_like(name="tiny-rf", registers_per_sm=256,
                          num_sms=1, max_warps_per_sm=16,
                          max_ctas_per_sm=4, max_threads_per_sm=512)
        job = JobSpec("LavaMD", tiny, TechniqueSpec.of("baseline"))
        orch = Orchestrator(_runner(), workers=1)
        outcomes = orch.run_jobs([job])
        assert isinstance(outcomes[job], JobFailure)
        assert orch.telemetry.failures == 1

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            Orchestrator(_runner(), workers=0)
