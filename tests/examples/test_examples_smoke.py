"""Smoke tests for the runnable examples (the simulation-free ones plus
the geometry tuner; the simulator-heavy examples are covered by the
benchmark suite's cached runs)."""

import subprocess
import sys
import os

import pytest

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(REPO, "examples", script), *args],
        capture_output=True, text=True, timeout=600, cwd=REPO,
    )


class TestExamples:
    def test_liveness_profile(self):
        proc = _run("liveness_profile.py", "SAD")
        assert proc.returncode == 0, proc.stderr
        assert "SAD" in proc.stdout
        assert "mean utilization" in proc.stdout

    def test_custom_kernel(self):
        proc = _run("custom_kernel.py")
        assert proc.returncode == 0, proc.stderr
        assert "heuristic picked" in proc.stdout
        assert "REGMUTEX.ACQUIRE" in proc.stdout

    def test_occupancy_explorer(self):
        proc = _run("occupancy_explorer.py", "BFS")
        assert proc.returncode == 0, proc.stderr
        assert "candidate splits" in proc.stdout
        assert "|Es|=6" in proc.stdout

    def test_occupancy_explorer_newer_arch(self):
        proc = _run("occupancy_explorer.py", "SAD", "--arch", "volta")
        assert proc.returncode == 0, proc.stderr
        assert "Volta-like" in proc.stdout

    def test_tune_suite(self):
        proc = _run("tune_suite.py")
        assert proc.returncode == 0, proc.stderr
        assert "All 16 applications reproduce Table I." in proc.stdout
