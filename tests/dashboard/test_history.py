"""History-journal tests: round trip, torn tail, corrupt lines."""

import json

from repro.dashboard.history import (
    HistoryEntry,
    append_history,
    default_machine,
    load_history,
)
from repro.harness.telemetry import MODE_CACHED, MODE_POOL, SessionTelemetry
from repro.observe.perf import perf_artifact


def _artifact(label="unit", cycles=1_000_000, seconds=2.0):
    t = SessionTelemetry(workers=1)
    t.record(f"{label}/job", seconds, MODE_POOL, cycles=cycles)
    return perf_artifact(label, t)


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        written = append_history(path, _artifact(), sha="abc123",
                                 timestamp=1000.0, machine="box",
                                 engine="scan")
        [loaded] = load_history(path)
        assert loaded == written
        assert loaded.sha == "abc123"
        assert loaded.machine == "box"
        assert loaded.engine == "scan"
        assert loaded.cycles_per_sec == 500_000.0
        assert loaded.series == "scan"  # engine wins over label

    def test_appends_preserve_order(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        for i in range(3):
            append_history(path, _artifact(), sha=f"sha{i}",
                           timestamp=float(i), machine="box")
        assert [e.sha for e in load_history(path)] == \
            ["sha0", "sha1", "sha2"]

    def test_defaults(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        entry = append_history(path, _artifact("lbl"), sha="s")
        assert entry.machine == default_machine()
        assert entry.engine is None
        assert entry.label == "lbl"
        assert entry.series == "lbl"  # no engine -> label is the series

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "benchmarks" / "history.jsonl")
        append_history(path, _artifact(), sha="s")
        assert len(load_history(path)) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []


class TestDurability:
    def test_torn_tail_is_left_unconsumed(self, tmp_path):
        # A writer killed mid-append leaves a final line with no
        # newline; the loader must keep everything before it and
        # ignore the torn fragment — same discipline as the run-store
        # journal.
        path = str(tmp_path / "history.jsonl")
        append_history(path, _artifact(), sha="good1", timestamp=1.0)
        append_history(path, _artifact(), sha="good2", timestamp=2.0)
        with open(path) as fh:
            intact = fh.read()
        torn = intact + intact.splitlines()[0][: len(intact) // 3]
        with open(path, "w") as fh:
            fh.write(torn)
        assert [e.sha for e in load_history(path)] == ["good1", "good2"]

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _artifact(), sha="good1", timestamp=1.0)
        with open(path, "a") as fh:
            fh.write("{not json at all\n")
            fh.write('{"schema": 1, "valid": "json, wrong shape"}\n')
        append_history(path, _artifact(), sha="good2", timestamp=2.0)
        assert [e.sha for e in load_history(path)] == ["good1", "good2"]

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _artifact(), sha="keep", timestamp=1.0)
        append_history(path, _artifact(), sha="tamper", timestamp=2.0)
        lines = open(path).read().splitlines()
        doctored = json.loads(lines[1])
        doctored["sha"] = "evil"  # payload no longer matches checksum
        with open(path, "w") as fh:
            fh.write(lines[0] + "\n")
            fh.write(json.dumps(doctored) + "\n")
        assert [e.sha for e in load_history(path)] == ["keep"]

    def test_unknown_schema_is_skipped(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _artifact(), sha="keep", timestamp=1.0)
        line = json.loads(open(path).read().splitlines()[0])
        line["schema"] = 99
        with open(path, "a") as fh:
            fh.write(json.dumps(line) + "\n")
        assert [e.sha for e in load_history(path)] == ["keep"]


class TestDerivedViews:
    def test_cached_session_has_no_throughput(self):
        t = SessionTelemetry(workers=1)
        t.record("a", 0.0, MODE_CACHED, cycles=500_000)
        entry = HistoryEntry(sha="s", timestamp=0.0, label="l",
                             machine="m", engine=None,
                             artifact=perf_artifact("l", t))
        assert entry.cycles_per_sec is None
        assert entry.cache_hit_rate == 1.0

    def test_figures_and_failures_pass_through(self):
        art = _artifact()
        art["figures"] = {"fig7": {"mean_cycle_reduction": 0.13}}
        art["failure_kinds"] = {"deadlock": 2}
        art["totals"]["failures"] = 2
        entry = HistoryEntry(sha="s", timestamp=0.0, label="l",
                             machine="m", engine=None, artifact=art)
        assert entry.figures == {"fig7": {"mean_cycle_reduction": 0.13}}
        assert entry.failure_kinds == {"deadlock": 2}
        assert entry.failures == 2
