"""Figure-summary tests: headline metrics and paper-target diffs."""

from types import SimpleNamespace

import pytest

from repro.dashboard.figures import (
    PAPER_TARGETS,
    figure_diffs,
    summarize_figures,
)


def _row(**kw):
    return SimpleNamespace(**kw)


class TestSummarizeFigures:
    def test_fig7_means(self):
        rows = [
            _row(app="BFS", cycle_reduction=0.10, acquire_success_rate=0.9),
            _row(app="SAD", cycle_reduction=0.20, acquire_success_rate=0.7),
        ]
        summary = summarize_figures({"fig7": rows})
        fig7 = summary["fig7"]
        assert fig7["mean_cycle_reduction"] == pytest.approx(0.15)
        assert fig7["mean_acquire_success"] == pytest.approx(0.8)
        assert fig7["apps"] == 2.0

    def test_empty_and_unknown_figures_are_skipped(self):
        summary = summarize_figures({"fig7": [], "table9000": [_row(x=1)]})
        assert summary == {}

    def test_fig8_both_series(self):
        rows = [_row(app="BFS", increase_no_technique=0.3,
                     increase_regmutex=0.1)]
        fig8 = summarize_figures({"fig8": rows})["fig8"]
        assert fig8["mean_increase_bare"] == pytest.approx(0.3)
        assert fig8["mean_increase_regmutex"] == pytest.approx(0.1)

    def test_fig10_uses_heuristic_picks_only(self):
        rows = [
            _row(app="BFS", cycle_reduction=0.5, is_heuristic_pick=False),
            _row(app="BFS", cycle_reduction=0.1, is_heuristic_pick=True),
        ]
        fig10 = summarize_figures({"fig10": rows})["fig10"]
        assert fig10["mean_reduction_heuristic"] == pytest.approx(0.1)


class TestFigureDiffs:
    def test_diff_is_measured_minus_paper(self):
        figures = {"fig7": {"mean_cycle_reduction": 0.15, "apps": 8.0}}
        [(target, measured, diff)] = figure_diffs(figures)
        assert target.figure == "fig7"
        assert target.paper == 0.13
        assert measured == pytest.approx(0.15)
        assert diff == pytest.approx(0.02)

    def test_unmatched_targets_are_skipped(self):
        assert figure_diffs({}) == []
        assert figure_diffs({"fig7": {"apps": 1.0}}) == []

    def test_every_target_names_a_distinct_metric(self):
        keys = {(t.figure, t.metric) for t in PAPER_TARGETS}
        assert len(keys) == len(PAPER_TARGETS)
