"""Noise-band gate tests: band math, verdicts, and history filtering."""

import pytest

from repro.dashboard.gate import (
    DEFAULT_MIN_ENTRIES,
    MIN_BAND_FRACTION,
    evaluate_gate,
    noise_band,
)
from repro.dashboard.history import HistoryEntry


def _entry(cps, machine="box", label="ci", engine=None, sha="s"):
    artifact = {
        "schema": 1, "label": label,
        "totals": {"cycles_per_sec": cps, "failures": 0},
        "cache": {"hit_rate": 0.0},
    }
    return HistoryEntry(sha=sha, timestamp=0.0, label=label,
                        machine=machine, engine=engine, artifact=artifact)


class TestNoiseBand:
    def test_median_and_mad(self):
        band = noise_band([90.0, 100.0, 110.0, 100.0, 100.0], k=4.0)
        assert band.center == 100.0
        assert band.mad == 0.0  # median of |v - 100| = 0
        # MAD collapsed, so the floor keeps the band non-degenerate.
        assert band.lo == pytest.approx(100.0 * (1 - MIN_BAND_FRACTION))
        assert band.hi == pytest.approx(100.0 * (1 + MIN_BAND_FRACTION))

    def test_k_scales_the_band(self):
        values = [80.0, 90.0, 100.0, 110.0, 120.0]
        wide = noise_band(values, k=4.0)
        narrow = noise_band(values, k=2.0)
        assert wide.mad == 10.0
        assert wide.lo == 60.0 and wide.hi == 140.0
        assert narrow.lo == 80.0 and narrow.hi == 120.0

    def test_robust_to_one_regressed_commit(self):
        # One terrible entry in the window must not drag the center —
        # the whole point of median ± MAD over mean ± stddev.
        clean = noise_band([100.0] * 9, k=4.0)
        dirty = noise_band([100.0] * 9 + [1.0], k=4.0)
        assert dirty.center == clean.center == 100.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            noise_band([])


class TestEvaluateGate:
    def _history(self, n=6, cps=100.0, **kw):
        return [_entry(cps, sha=f"s{i}", **kw) for i in range(n)]

    def test_ok_inside_band(self):
        r = evaluate_gate(99.0, self._history(), machine="box", label="ci")
        assert r.status == "ok" and not r.regressed

    def test_faster_than_band_is_ok(self):
        r = evaluate_gate(1e9, self._history(), machine="box", label="ci")
        assert r.status == "ok"

    def test_regressed_below_band(self):
        r = evaluate_gate(50.0, self._history(), machine="box", label="ci")
        assert r.regressed
        assert "below the noise band" in r.message

    def test_insufficient_history_is_inconclusive(self):
        few = self._history(n=DEFAULT_MIN_ENTRIES - 1)
        r = evaluate_gate(50.0, few, machine="box", label="ci")
        assert r.inconclusive and not r.regressed

    def test_cached_session_is_inconclusive(self):
        r = evaluate_gate(None, self._history(), machine="box", label="ci")
        assert r.inconclusive
        assert "cached" in r.message

    def test_other_machines_do_not_feed_the_band(self):
        # 6 fast entries from another machine + 2 from ours: the gate
        # must not compare us against the other machine's numbers.
        history = self._history(n=6, cps=1e9, machine="fastbox") + \
            self._history(n=2, cps=100.0, machine="box")
        r = evaluate_gate(100.0, history, machine="box", label="ci")
        assert r.inconclusive  # only 2 same-machine entries

    def test_other_labels_do_not_feed_the_band(self):
        history = self._history(n=6, cps=1e9, label="nightly") + \
            self._history(n=2, cps=100.0, label="ci")
        r = evaluate_gate(100.0, history, machine="box", label="ci")
        assert r.inconclusive

    def test_window_keeps_only_recent_entries(self):
        # 10 ancient slow entries then 6 recent fast ones: with
        # window=6 the band comes from the recent regime only.
        history = self._history(n=10, cps=10.0) + \
            self._history(n=6, cps=100.0)
        r = evaluate_gate(50.0, history, machine="box", label="ci",
                          window=6)
        assert r.regressed
        assert r.band.center == 100.0

    def test_entries_without_throughput_are_ignored(self):
        history = self._history(n=4) + [_entry(None, sha="cached")]
        r = evaluate_gate(99.0, history, machine="box", label="ci",
                          min_entries=5)
        assert r.inconclusive  # the cached entry does not count
