"""Renderer tests: golden HTML, determinism, and content invariants.

The golden file pins the full rendered page for one deterministic
fixture.  After an intentional renderer change, regenerate it with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/dashboard/test_render.py

and review the diff like any other code change.
"""

import os
from pathlib import Path

from repro.dashboard.history import HistoryEntry
from repro.dashboard.render import render_dashboard, write_dashboard

GOLDEN = Path(__file__).parent / "golden" / "dashboard.html"


def _artifact(cps, label="ci", hit_rate=0.25, failures=0, figures=None):
    art = {
        "schema": 1,
        "label": label,
        "workers": 4,
        "totals": {
            "jobs": 8, "failures": failures, "cycles": 1_000_000,
            "cached_cycles": 250_000, "sim_seconds": 20.0,
            "cycles_per_sec": cps,
        },
        "cache": {"hits": 2, "misses": 6, "hit_rate": hit_rate},
        "failure_kinds": {"deadlock": failures} if failures else {},
        "jobs": [],
    }
    if figures:
        art["figures"] = figures
    return art


def _fixture():
    """Deterministic history + artifacts covering every chart type."""
    figures = {
        "fig7": {"mean_cycle_reduction": 0.131, "apps": 8.0},
        "fig8": {"mean_increase_bare": 0.21, "mean_increase_regmutex": 0.10,
                 "apps": 8.0},
    }
    history = []
    for i, (engine, cps) in enumerate([
        ("scan", 40_000.0), ("event", 55_000.0), ("scan", 42_000.0),
        ("event", 56_000.0), ("scan", 41_000.0), ("event", 54_000.0),
    ]):
        history.append(HistoryEntry(
            sha=f"{i:07x}cafe", timestamp=1_700_000_000.0 + i * 3600,
            label="ci", machine="golden-box", engine=engine,
            artifact=_artifact(cps, hit_rate=0.1 * i,
                               failures=1 if i == 3 else 0,
                               figures=figures if i == 5 else None),
        ))
    artifacts = [
        ("BENCH_seed.json", _artifact(43_657.2, label="seed")),
        ("BENCH_ci.json", _artifact(49_802.3, label="ci", figures=figures)),
    ]
    profile = {
        "title": "Gaussian / regmutex on GTX480",
        "issue_slots": 10_000,
        "issued": 6_200,
        "stalls": {"memory": 2_100, "scoreboard": 900,
                   "barrier": 500, "acquire": 300},
    }
    return history, artifacts, profile


def _render():
    history, artifacts, profile = _fixture()
    return render_dashboard(history, artifacts, profile=profile,
                            generated_at="2026-01-01 00:00 UTC")


class TestGolden:
    def test_matches_golden_file(self, tmp_path):
        html = _render()
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(html)
        assert GOLDEN.exists(), \
            "golden file missing — run with REPRO_UPDATE_GOLDEN=1"
        assert html == GOLDEN.read_text()

    def test_render_is_deterministic(self):
        assert _render() == _render()


class TestContent:
    def test_self_contained_single_page(self):
        html = _render()
        # No external fetches: everything inline, file:// friendly.
        assert "http-equiv" not in html
        assert "<script src" not in html
        assert 'href="http' not in html and "url(" not in html
        assert html.lstrip().startswith("<!DOCTYPE html>")

    def test_trend_series_and_diffs_present(self):
        html = _render()
        assert "scan" in html and "event" in html  # engine trend lines
        assert "fig7" in html  # figure diff vs paper target
        assert "mean cycle reduction" in html
        assert "Gaussian / regmutex on GTX480" in html  # stall flame

    def test_tables_accompany_every_chart(self):
        html = _render()
        # The accessibility pass: each chart ships a <details> table.
        assert html.count("<details") >= 4
        assert html.count("<table") >= html.count("<details")

    def test_dark_mode_is_selected_not_flipped(self):
        html = _render()
        assert "prefers-color-scheme: dark" in html
        assert 'data-theme="light"' in html  # explicit override hook

    def test_empty_inputs_still_render(self):
        html = render_dashboard([], [], generated_at="2026-01-01")
        assert "<!DOCTYPE html>" in html
        assert "no history" in html.lower() or "no data" in html.lower()

    def test_write_dashboard_round_trip(self, tmp_path):
        out = tmp_path / "sub" / "dash.html"
        write_dashboard(str(out), "<!DOCTYPE html><html></html>")
        assert out.read_text().startswith("<!DOCTYPE html>")
