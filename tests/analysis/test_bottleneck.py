"""Tests for bottleneck attribution."""

import pytest

from repro.analysis.bottleneck import (
    BottleneckReport,
    attribute_bottlenecks,
    compare,
)
from repro.sim.stats import SmStats


def _stats(**kw):
    s = SmStats()
    s.cycles = kw.pop("cycles", 100)
    s.instructions_issued = kw.pop("issued", 120)
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestAttribution:
    def test_basic_report(self):
        s = _stats(stall_memory=30, stall_scoreboard=10,
                   stall_barrier=5, stall_acquire=15)
        report = attribute_bottlenecks(s)
        assert report.issue_slots == 200
        assert report.idle_slots == 60
        assert report.issue_utilization == 0.6
        assert report.dominant() == "memory"
        assert report.fraction("memory") == 0.5

    def test_no_idle(self):
        report = attribute_bottlenecks(_stats())
        assert report.dominant() == "none"
        assert report.fraction("memory") == 0.0

    def test_unknown_category(self):
        report = attribute_bottlenecks(_stats())
        with pytest.raises(ValueError, match="unknown category"):
            report.fraction("thermal")

    def test_format_contains_all_categories(self):
        s = _stats(stall_memory=10, stall_acquire=5)
        text = attribute_bottlenecks(s).format()
        for cat in ("memory", "scoreboard", "barrier", "acquire"):
            assert cat in text

    def test_compare_renders_both_columns(self):
        a = attribute_bottlenecks(_stats(stall_memory=40))
        b = attribute_bottlenecks(_stats(stall_memory=10, stall_acquire=30))
        text = compare(a, b)
        assert "memory" in text and "acquire" in text
        assert "issue util" in text


class TestOnRealRun:
    def test_regmutex_shifts_stall_mix_on_contended_app(self, tiny_config):
        """End-to-end: on a section-starved kernel, RegMutex converts some
        memory idle slots into acquire idle slots."""
        from repro.isa.builder import KernelBuilder
        from repro.regmutex.issue_logic import RegMutexSmState
        from repro.sim.sm import StreamingMultiprocessor
        from repro.sim.rand import DeterministicRng

        b = KernelBuilder(regs_per_thread=8, threads_per_cta=64)
        for r in range(4):
            b.ldc(r)
        b.acquire()
        b.ldc(5)
        b.load(6, 5)
        b.alu(7, 6)
        b.alu(0, 0, 7)
        b.release()
        b.store(0, 0)
        b.exit()
        kernel = b.build()
        stats = SmStats()
        state = RegMutexSmState(kernel, tiny_config, stats, num_sections=1)
        sm = StreamingMultiprocessor(
            sm_id=0, config=tiny_config, kernel=kernel, technique_state=state,
            ctas_resident_limit=4, total_ctas=4,
            rng=DeterministicRng(1), stats=stats,
        )
        sm.run()
        report = attribute_bottlenecks(stats, tiny_config.num_schedulers)
        assert report.stalls["acquire"] > 0
