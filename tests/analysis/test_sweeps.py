"""Tests for the register-file size sweep (on the real device but with
the cheapest app, kept fast by the runner's memoization)."""

import pytest

from repro.analysis.sweeps import RfSizePoint, register_file_size_sweep, _scaled
from repro.arch.config import GTX480
from repro.harness.runner import ExperimentRunner


class TestScaledConfig:
    def test_scale_is_warp_aligned(self):
        scaled = _scaled(GTX480, 0.37)
        assert scaled.registers_per_sm % GTX480.warp_size == 0
        assert scaled.registers_per_sm <= GTX480.registers_per_sm * 0.37

    def test_name_carries_scale(self):
        assert "rf0.5" in _scaled(GTX480, 0.5).name


class TestRfSizePoint:
    def _point(self, base, rm):
        return RfSizePoint(
            app="x", scale=0.5, registers_per_sm=1,
            increase_baseline=base, increase_regmutex=rm,
            fits_baseline=True, fits_regmutex=True,
        )

    def test_recovery_fraction(self):
        assert self._point(0.20, 0.05).regmutex_recovery == pytest.approx(0.75)

    def test_recovery_zero_when_no_slowdown(self):
        assert self._point(0.0, 0.0).regmutex_recovery == 0.0


class TestSweep:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(target_ctas_per_sm=8)

    def test_sweep_structure(self, runner):
        points = register_file_size_sweep(
            runner, "Gaussian", scales=(1.0, 0.5)
        )
        assert [p.scale for p in points] == [1.0, 0.5]
        full, half = points
        assert full.fits_baseline and full.fits_regmutex
        assert abs(full.increase_baseline) < 0.02

    def test_unplaceable_scale_reported(self, runner):
        # 5% of the file cannot hold even one Gaussian CTA.
        points = register_file_size_sweep(
            runner, "Gaussian", scales=(0.05,)
        )
        (p,) = points
        assert not p.fits_baseline
        assert p.increase_baseline == float("inf")
