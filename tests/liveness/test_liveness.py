"""Tests for divergence-conservative register liveness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode
from repro.liveness.liveness import analyze_liveness, instruction_defs_uses
from repro.workloads.suite import APPLICATIONS, build_app_kernel


class TestDefsUses:
    def test_alu(self):
        from repro.isa.instructions import Instruction
        d, u = instruction_defs_uses(Instruction(Opcode.IADD, (0,), (1, 2)))
        assert d == {0} and u == {1, 2}


class TestStraightLineLiveness:
    def test_value_live_from_def_to_last_use(self):
        b = KernelBuilder(regs_per_thread=3)
        b.ldc(0)          # pc0: def R0
        b.ldc(1)          # pc1: def R1
        b.alu(2, 0, 1)    # pc2: last use of R0, R1
        b.store(2, 2)     # pc3: last use of R2
        b.exit()          # pc4
        info = analyze_liveness(b.build())
        assert 0 in info.live_in[2] and 0 not in info.live_out[2]
        assert 2 in info.live_in[3] and 2 not in info.live_out[3]

    def test_dead_def_not_live_before(self):
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.ldc(1)      # never used
        b.store(0, 0)
        b.exit()
        info = analyze_liveness(b.build())
        assert 1 not in info.live_in[1]
        assert 1 not in info.live_out[1]

    def test_live_count_includes_destination(self):
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)       # dst R0, nothing live before
        b.store(0, 0)
        b.exit()
        info = analyze_liveness(b.build())
        assert info.live_count[0] == 1  # the def itself needs a register

    def test_max_live_matches_peak(self, straight_kernel):
        info = analyze_liveness(straight_kernel)
        regs = straight_kernel.metadata.regs_per_thread
        assert info.max_live() == regs


class TestLoopLiveness:
    def test_loop_carried_value_live_through_body(self, loop_kernel):
        info = analyze_liveness(loop_kernel)
        head = loop_kernel.label_pc("head")
        # R0/R1 feed the loop body and the predicate every iteration.
        assert 0 in info.live_in[head]
        assert 1 in info.live_in[head]

    def test_redefined_each_iteration_is_still_live_at_backedge(self, loop_kernel):
        info = analyze_liveness(loop_kernel)
        # The branch pc: everything used next iteration is live out.
        for pc, inst in enumerate(loop_kernel):
            if inst.is_conditional_branch:
                assert 0 in info.live_out[pc]


class TestDivergenceConservatism:
    def test_register_defined_before_branch_used_in_one_arm(self, branch_kernel):
        """R2 (defined before the branch, used only in the then-arm) must be
        live through the else-arm too — Figure 3's R3 case."""
        info = analyze_liveness(branch_kernel)
        else_pc = branch_kernel.label_pc("else_")
        assert 2 in info.live_in[else_pc]

    def test_register_defined_in_arm_used_after_join(self, branch_kernel):
        """R3 (defined in then-arm, used after the join) must be treated as
        live across the else-arm — Figure 3's R2 case."""
        info = analyze_liveness(branch_kernel)
        else_pc = branch_kernel.label_pc("else_")
        assert 3 in info.live_in[else_pc] or 3 in info.live_out[else_pc]

    def test_unrelated_register_not_pinned(self, branch_kernel):
        """R4 (defined and dead within the else-arm) must not leak into the
        then-arm."""
        info = analyze_liveness(branch_kernel)
        then_pc = branch_kernel.label_pc("else_") - 2  # first then-arm inst
        assert 4 not in info.live_in[then_pc]


class TestBarrierQueries:
    def test_live_at_barriers(self):
        b = KernelBuilder(regs_per_thread=4)
        b.ldc(0).ldc(1).ldc(2)
        b.barrier()
        b.alu(3, 0, 1)
        b.store(3, 2)
        b.exit()
        info = analyze_liveness(b.build())
        [(pc, live)] = info.live_at_barriers()
        assert b.build()[pc].is_barrier
        assert live == {0, 1, 2}

    def test_no_barriers(self, straight_kernel):
        assert analyze_liveness(straight_kernel).live_at_barriers() == []


class TestSuiteKernels:
    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_max_live_within_declared_registers(self, app):
        spec = APPLICATIONS[app]
        kernel = build_app_kernel(spec)
        info = analyze_liveness(kernel)
        assert info.max_live() <= spec.regs
        # The generator's rotating-pool construction can undershoot the
        # phase target by a couple of registers (a slot overwritten
        # without an intervening read dies early); what matters for
        # RegMutex is that the peak clearly exceeds Table I's |Bs|.
        assert info.max_live() >= spec.high_pressure - 3
        assert info.max_live() > spec.expected_bs

    @pytest.mark.parametrize("app", [a for a, s in APPLICATIONS.items()
                                     if s.has_barrier])
    def test_barrier_pressure_below_bs(self, app):
        """Deadlock rule 2 must be satisfiable: barrier-point liveness must
        fit in Table I's base set."""
        spec = APPLICATIONS[app]
        info = analyze_liveness(build_app_kernel(spec))
        for _, live in info.live_at_barriers():
            assert len(live) <= spec.expected_bs


class TestLivenessInvariants:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_generated_kernels_satisfy_dataflow_equations(self, seed):
        """live_in = uses | (live_out - defs) at every pc, and live_out is
        the union of live_in over instruction-level successors."""
        from repro.workloads.generator import KernelShape, PressurePhase, generate_kernel
        shape = KernelShape(
            name="prop",
            phases=(
                PressurePhase(live_regs=4, length=6, mem_ratio=0.2),
                PressurePhase(live_regs=8, length=5, loop_trips=2),
            ),
            regs_per_thread=8,
            outer_trips=2,
            seed=seed,
        )
        kernel = generate_kernel(shape)
        info = analyze_liveness(kernel)
        for pc, inst in enumerate(kernel):
            d, u = instruction_defs_uses(inst)
            assert info.live_in[pc] >= u | (info.live_out[pc] - d)
            succ_union = frozenset().union(
                *(info.live_in[s] for s in kernel.successors_of_pc(pc))
            ) if kernel.successors_of_pc(pc) else frozenset()
            # May-liveness with divergence pinning: live_out must cover the
            # successor union (equality can be broken by pinning, which only
            # ever adds registers).
            assert info.live_out[pc] >= succ_union


class TestMultipleBarriers:
    def test_each_barrier_reported_with_its_live_set(self):
        b = KernelBuilder(regs_per_thread=6)
        b.ldc(0).ldc(1)
        b.barrier()                  # 2 live
        b.ldc(2).ldc(3).ldc(4)
        b.barrier()                  # 5 live
        for r in range(5):
            b.alu(5, 5 if r else 0, r)
        b.store(5, 5)
        b.exit()
        info = analyze_liveness(b.build())
        barriers = info.live_at_barriers()
        assert len(barriers) == 2
        first, second = barriers
        assert len(first[1]) < len(second[1])
