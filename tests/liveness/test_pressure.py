"""Tests for pressure profiling and Figure 1 traces."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.liveness.pressure import (
    dynamic_pressure_trace,
    static_pressure,
)
from repro.workloads.suite import FIGURE1_APPS, get_app, build_app_kernel


class TestStaticPressure:
    def test_histogram_sums_to_instruction_count(self, straight_kernel):
        profile = static_pressure(straight_kernel)
        assert sum(profile.histogram().values()) == len(straight_kernel)

    def test_pcs_above_threshold(self, straight_kernel):
        profile = static_pressure(straight_kernel)
        assert profile.pcs_above(profile.max_live) == []
        assert len(profile.pcs_above(0)) > 0

    def test_fraction_above_bounds(self, straight_kernel):
        profile = static_pressure(straight_kernel)
        assert 0.0 <= profile.fraction_above(2) <= 1.0
        assert profile.fraction_above(-1) == 1.0


class TestDynamicTrace:
    def test_trace_ends_at_exit(self, straight_kernel):
        trace = dynamic_pressure_trace(straight_kernel)
        assert trace.pcs[-1] == straight_kernel.exit_pcs()[0]

    def test_loop_unrolls_dynamically(self, loop_kernel):
        trace = dynamic_pressure_trace(loop_kernel)
        assert trace.instructions_executed > len(loop_kernel)

    def test_trip_counts_respected(self):
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.label("l").alu(1, 0)
        b.setp(0, 0, 1)
        b.branch("l", 0, trip_count=5)
        b.exit()
        k = b.build()
        trace = dynamic_pressure_trace(k)
        body_pc = k.label_pc("l")
        assert trace.pcs.count(body_pc) == 6  # 5 taken + final fall-through

    def test_infinite_loop_detected(self):
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.label("l").alu(1, 0)
        b.jump("l")
        b.exit()
        with pytest.raises(RuntimeError, match="terminate"):
            dynamic_pressure_trace(b.build(), max_instructions=500)

    def test_probability_branches_deterministic_per_seed(self, branch_kernel):
        t1 = dynamic_pressure_trace(branch_kernel, seed=3)
        t2 = dynamic_pressure_trace(branch_kernel, seed=3)
        assert t1.pcs == t2.pcs

    def test_utilization_bounded(self, loop_kernel):
        trace = dynamic_pressure_trace(loop_kernel)
        for u in trace.utilization:
            assert 0.0 <= u <= 1.0


class TestFigure1Shape:
    """The paper's motivation: most of the time, only a subset of the
    allocated registers is live, and utilization fluctuates."""

    @pytest.mark.parametrize("app", FIGURE1_APPS)
    def test_majority_of_time_below_peak(self, app):
        trace = dynamic_pressure_trace(build_app_kernel(get_app(app)))
        assert trace.fraction_fully_utilized() < 0.5

    @pytest.mark.parametrize("app", FIGURE1_APPS)
    def test_utilization_fluctuates(self, app):
        trace = dynamic_pressure_trace(build_app_kernel(get_app(app)))
        util = trace.utilization
        assert max(util) - min(util) > 0.3  # visible sawtooth

    @pytest.mark.parametrize("app", FIGURE1_APPS)
    def test_peak_approaches_allocation(self, app):
        spec = get_app(app)
        trace = dynamic_pressure_trace(build_app_kernel(spec))
        assert max(trace.live_counts) >= spec.regs - 3
        assert max(trace.live_counts) > spec.expected_bs
