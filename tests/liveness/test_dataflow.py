"""Tests for the generic backward dataflow solver."""

import pytest

from repro.cfg.graph import build_cfg
from repro.liveness.dataflow import BackwardDataflow


class TestBackwardDataflow:
    def test_constant_transfer_reaches_fixed_point(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        result = BackwardDataflow(cfg, lambda b, out: frozenset({b}) | out).solve()
        # Every block's IN contains itself plus everything downstream.
        for blk in cfg.blocks:
            assert blk.index in result.block_in[blk.index]

    def test_boundary_seeds_exit_blocks(self, straight_kernel):
        cfg = build_cfg(straight_kernel)
        boundary = frozenset({"sentinel"})
        result = BackwardDataflow(
            cfg, lambda b, out: out, boundary=boundary
        ).solve()
        assert result.block_out[0] == boundary
        assert result.block_in[0] == boundary

    def test_union_over_successors(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        # Each block generates its own index; OUT should union successor INs.
        result = BackwardDataflow(
            cfg, lambda b, out: frozenset({b}) | out
        ).solve()
        for blk in cfg.blocks:
            expected = frozenset().union(
                *(result.block_in[s] for s in cfg.successors[blk.index])
            ) if cfg.successors[blk.index] else frozenset()
            assert result.block_out[blk.index] == expected

    def test_loop_converges(self, loop_kernel):
        cfg = build_cfg(loop_kernel)
        result = BackwardDataflow(
            cfg, lambda b, out: frozenset({b}) | out
        ).solve()
        assert result.iterations < 100

    def test_non_convergence_guard(self, loop_kernel):
        cfg = build_cfg(loop_kernel)
        counter = [0]

        def poisoned(b, out):
            counter[0] += 1
            return frozenset({counter[0]})  # never stabilizes

        with pytest.raises(RuntimeError, match="converge"):
            BackwardDataflow(cfg, poisoned).solve(max_iterations=50)
