"""Tests for the register-file energy model."""

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF
from repro.energy.model import (
    EnergyBreakdown,
    EnergyParams,
    compare_energy,
    estimate_register_file_energy,
)
from repro.harness.runner import RunRecord


def _record(cycles=100_000, issued=500_000):
    return RunRecord(
        kernel_name="k", config_name="c", technique="t", cycles=cycles,
        ctas_total=10, ctas_per_sm_resident=2, cycles_per_cta=1.0,
        theoretical_occupancy=0.5, acquire_attempts=0, acquire_successes=0,
        release_count=0, instructions_issued=issued,
        stall_acquire=0, stall_memory=0,
    )


class TestEnergyModel:
    def test_dynamic_scales_with_instructions(self):
        small = estimate_register_file_energy(_record(issued=100), GTX480)
        large = estimate_register_file_energy(_record(issued=200), GTX480)
        assert large.dynamic == pytest.approx(2 * small.dynamic)

    def test_static_scales_with_cycles(self):
        short = estimate_register_file_energy(_record(cycles=100), GTX480)
        long = estimate_register_file_energy(_record(cycles=300), GTX480)
        assert long.static == pytest.approx(3 * short.static)

    def test_half_file_leaks_half(self):
        full = estimate_register_file_energy(_record(), GTX480)
        half = estimate_register_file_energy(_record(), GTX480_HALF_RF)
        assert half.static == pytest.approx(full.static / 2)

    def test_half_file_cheaper_per_access(self):
        full = estimate_register_file_energy(_record(), GTX480)
        half = estimate_register_file_energy(_record(), GTX480_HALF_RF)
        assert half.dynamic < full.dynamic

    def test_compare_energy_keys(self):
        full = estimate_register_file_energy(_record(), GTX480)
        half = estimate_register_file_energy(_record(), GTX480_HALF_RF)
        deltas = compare_energy(full, half)
        assert set(deltas) == {"dynamic", "static", "total"}
        assert deltas["static"] == pytest.approx(-0.5)
        assert deltas["total"] < 0

    def test_slower_half_file_can_lose(self):
        """Leakage integrates over time: a half file that doubles runtime
        can erase the savings — the effect RegMutex prevents."""
        full = estimate_register_file_energy(_record(cycles=100_000), GTX480)
        slow_half = estimate_register_file_energy(
            _record(cycles=320_000), GTX480_HALF_RF
        )
        fast_half = estimate_register_file_energy(
            _record(cycles=110_000), GTX480_HALF_RF
        )
        assert fast_half.static < full.static
        assert slow_half.static > full.static

    def test_params_override(self):
        params = EnergyParams(leak_per_cell_cycle=0.0)
        e = estimate_register_file_energy(_record(), GTX480, params)
        assert e.static == 0.0
        assert e.total == e.dynamic
