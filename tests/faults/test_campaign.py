"""End-to-end fault campaign: every injected fault must be caught.

These tests are the executable form of the acceptance criterion: no
injected deadlock-class fault may run past ``DETECTION_DEADLINE_CYCLES``
or surface as anything but a structured, attributed error.
"""

import pytest

from repro.faults.campaign import (
    DETECTION_DEADLINE_CYCLES,
    campaign_table,
    detection_rate,
    run_campaign,
)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def sim_outcomes():
    """Simulator + cache layers only: fast, no worker processes."""
    return run_campaign(seed=2018, include_harness=False)


class TestSimAndCacheLayers:
    def test_nothing_escapes(self, sim_outcomes):
        escaped = [o for o in sim_outcomes if o.escaped]
        assert not escaped, campaign_table(sim_outcomes)

    def test_covers_sim_and_cache_scenarios(self, sim_outcomes):
        # 4 simulator + 2 checkpoint + 3 cache-damage + 1 cache-concurrency
        assert len(sim_outcomes) == 10
        assert {o.layer for o in sim_outcomes} == {
            "srp", "compiler", "checkpoint", "cache",
        }

    def test_deadlocks_caught_well_before_deadline(self, sim_outcomes):
        for outcome in sim_outcomes:
            if outcome.layer in ("srp", "compiler"):
                assert outcome.cycles is not None, outcome
                assert outcome.cycles < DETECTION_DEADLINE_CYCLES, outcome

    def test_each_detector_earns_its_keep(self, sim_outcomes):
        detectors = {o.scenario: o.detector for o in sim_outcomes}
        # Parked waiters with no timers: provable deadlock, immediate.
        assert detectors["lost-release/wakeup"] == "deadlock-check"
        # Eager re-polling always has a timer pending: only the
        # progress watchdog can call this livelock.
        assert detectors["lost-release/eager"] == "watchdog"
        assert detectors["unbalanced-acquire/barrier"] == "deadlock-check"
        assert detectors["srp-bit-flip/invariants"] == "invariant-checker"
        # Damaged checkpoints are classified and discarded, never
        # silently resumed; the journal/lock protocol survives
        # concurrent writers.
        assert detectors["checkpoint-truncate/fallback"] == "checkpoint-validation"
        assert detectors["checkpoint-corrupt/fallback"] == "checkpoint-validation"
        assert detectors["cache-concurrent-writer/stress"] == "journal-lock"

    def test_campaign_is_deterministic(self, sim_outcomes):
        assert run_campaign(seed=2018, include_harness=False) == sim_outcomes

    def test_table_reports_full_detection(self, sim_outcomes):
        table = campaign_table(sim_outcomes)
        assert "ESCAPED" not in table
        assert "detection rate 100%" in table
        assert detection_rate(sim_outcomes) == 1.0


class TestFullCampaign:
    def test_harness_faults_absorbed_or_attributed(self):
        outcomes = run_campaign(seed=2018, include_harness=True, workers=2)
        assert len(outcomes) == 13
        escaped = [o for o in outcomes if o.escaped]
        assert not escaped, campaign_table(outcomes)
        harness = {o.scenario: o for o in outcomes if o.layer == "harness"}
        assert harness["worker-crash/retry"].detector == "retry"
        assert harness["sim-error/no-retry"].detector == "failure-taxonomy"
        assert harness["worker-hang/timeout"].detector == "job-timeout"


class TestKillMidRun:
    def test_sigkilled_worker_resumes_bit_identically(self):
        """The crash-safety acceptance probe: a worker SIGKILLed at a
        deterministic cycle is retried, the retry resumes from the
        surviving checkpoint, and the final record is bit-identical to
        an undisturbed run."""
        outcomes = run_campaign(
            seed=2018, include_harness=True, workers=2,
            include_kill_mid_run=True,
        )
        assert len(outcomes) == 16
        # Two orchestrator variants: the default engine and the native
        # issue engine (whose checkpoints are stamped and must resume
        # under the same engine).
        by_scenario = {o.scenario: o for o in outcomes}
        for scenario in ("kill-mid-run/resume", "kill-mid-run-native/resume"):
            kill = by_scenario[scenario]
            assert kill.detected, kill.detail
            assert kill.detector == "checkpoint-resume"
            assert kill.cycles is not None and kill.cycles > 0  # resume cycle
            assert "bit-identical" in kill.detail
        # The daemon twin: the same SIGKILL absorbed by the service's
        # pool-recycle + retry path instead of the orchestrator's.
        daemon = next(o for o in outcomes if o.layer == "service")
        assert daemon.scenario == "daemon-kill-worker/resume"
        assert daemon.detected, daemon.detail
        assert daemon.detector == "daemon-retry+resume"
        assert daemon.cycles is not None and daemon.cycles > 0
