"""Unit tests for the fault-injection primitives in repro.faults."""

import os

import pytest

from repro.errors import FaultInjectionError, SimulationError
from repro.faults.injector import (
    FAULT_KINDS,
    FaultingRegMutexState,
    FaultSpec,
    FaultyWorkerTechnique,
    corrupt_cache_file,
    drop_release,
    fault_kinds,
    insert_acquire,
)
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode
from repro.sim.rand import DeterministicRng
from repro.sim.stats import SmStats
from repro.sim.warp import Warp


def srp_kernel():
    b = KernelBuilder(name="inj-probe", regs_per_thread=8, threads_per_cta=64)
    for reg in range(4):
        b.ldc(reg)
    b.acquire()
    b.alu(4, 0, 1)
    b.release()
    b.store(0, 4)
    b.exit()
    return b.build().with_metadata(base_set_size=4, extended_set_size=4)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultSpec(kind="cosmic-ray")

    def test_negative_trigger_rejected(self):
        with pytest.raises(FaultInjectionError, match="trigger"):
            FaultSpec(kind="dropped-release", trigger=-1)

    def test_layer_comes_from_registry(self):
        assert FaultSpec(kind="dropped-release").layer == "srp"
        assert FaultSpec(kind="worker-crash").layer == "harness"
        assert FaultSpec(kind="cache-truncate").layer == "cache"

    def test_registry_is_sorted_and_complete(self):
        assert fault_kinds() == tuple(sorted(FAULT_KINDS))
        assert {k.layer for k in FAULT_KINDS.values()} == {
            "srp", "compiler", "harness", "cache", "checkpoint",
        }

    def test_crash_safety_kinds_registered(self):
        assert FaultSpec(kind="kill-mid-run").layer == "harness"
        assert FaultSpec(kind="checkpoint-truncate").layer == "checkpoint"
        assert FaultSpec(kind="checkpoint-corrupt").layer == "checkpoint"
        assert FaultSpec(kind="cache-concurrent-writer").layer == "cache"


class TestKernelTransforms:
    def test_drop_release_removes_exactly_one(self):
        kernel = srp_kernel()
        releases = sum(1 for i in kernel if i.opcode is Opcode.RELEASE)
        mutated = drop_release(kernel)
        assert len(mutated) == len(kernel) - 1
        assert (
            sum(1 for i in mutated if i.opcode is Opcode.RELEASE)
            == releases - 1
        )
        # Acquire survives: the kernel is now unbalanced by construction.
        assert any(i.opcode is Opcode.ACQUIRE for i in mutated)

    def test_drop_release_requires_a_release(self):
        b = KernelBuilder(name="plain", regs_per_thread=4, threads_per_cta=64)
        b.alu(0, 1, 2)
        b.exit()
        with pytest.raises(FaultInjectionError, match="no removable RELEASE"):
            drop_release(b.build())

    def test_insert_acquire_adds_one_and_keeps_labels(self):
        b = KernelBuilder(name="labeled", regs_per_thread=8, threads_per_cta=64)
        b.ldc(0)
        b.label("loop")
        b.alu(1, 0, 0)
        b.branch("loop", 1, trip_count=2)
        b.exit()
        kernel = b.build()
        target = kernel.label_pc("loop")
        mutated = insert_acquire(kernel, before_pc=target)
        assert len(mutated) == len(kernel) + 1
        assert mutated[target].opcode is Opcode.ACQUIRE
        # The label moved onto the ACQUIRE, so branch targets still
        # resolve (Kernel construction itself re-validates them).
        assert mutated.label_pc("loop") == target

    def test_insert_acquire_bounds_checked(self):
        with pytest.raises(FaultInjectionError, match="outside kernel"):
            insert_acquire(srp_kernel(), before_pc=999)


class TestSrpCorruption:
    def test_lost_release_breaks_invariants(self):
        from repro.regmutex.srp import SharedRegisterPool

        srp = SharedRegisterPool(max_warps=8, num_sections=2)
        assert srp.acquire(0) is not None
        srp.check_invariants()  # consistent while honest
        srp.corrupt_for_fault_injection(clear_slots=(0,))
        # Warp-side state cleared, section bit leaked.
        assert not srp.holds_section(0)
        with pytest.raises(AssertionError):
            srp.check_invariants()

    def test_phantom_set_bit_breaks_invariants(self):
        from repro.regmutex.srp import SharedRegisterPool

        srp = SharedRegisterPool(max_warps=8, num_sections=2)
        srp.corrupt_for_fault_injection(set_section_bits=(1,))
        with pytest.raises(AssertionError):
            srp.check_invariants()


class TestFaultingState:
    def _state(self, config, fault):
        return FaultingRegMutexState(
            srp_kernel(), config, SmStats(),
            num_sections=2, retry_policy="wakeup", fault=fault,
        )

    def test_dropped_release_leaks_section(self, tiny_config):
        fault = FaultSpec(kind="dropped-release", trigger=0)
        state = self._state(tiny_config, fault)
        warp = Warp(0, 0, srp_kernel(), DeterministicRng(3))
        assert state.try_acquire(warp, cycle=0)
        assert warp.holds_extended_set
        state.release(warp, cycle=5)
        # The warp believes it released...
        assert not warp.holds_extended_set
        assert warp.srp_section is None
        # ...but the SRP never saw it: the section is leaked.
        assert state.srp.sections_in_use == 1
        assert state.fault_fired_at == 5
        snapshot = state.debug_snapshot()
        assert snapshot["fault"]["kind"] == "dropped-release"
        assert snapshot["fault"]["fired_at"] == 5

    def test_later_trigger_spares_early_releases(self, tiny_config):
        fault = FaultSpec(kind="dropped-release", trigger=1)
        state = self._state(tiny_config, fault)
        first = Warp(0, 0, srp_kernel(), DeterministicRng(3))
        assert state.try_acquire(first, cycle=0)
        state.release(first, cycle=2)  # ordinal 0: honest release
        assert state.srp.sections_in_use == 0
        second = Warp(1, 0, srp_kernel(), DeterministicRng(4))
        assert state.try_acquire(second, cycle=3)
        state.release(second, cycle=4)  # ordinal 1: dropped
        assert state.srp.sections_in_use == 1
        assert state.fault_fired_at == 4

    def test_bit_corruption_steals_a_free_section(self, tiny_config):
        fault = FaultSpec(kind="srp-bit-corruption", trigger=0)
        state = self._state(tiny_config, fault)
        warp = Warp(0, 0, srp_kernel(), DeterministicRng(3))
        assert state.try_acquire(warp, cycle=0)  # fires before acquiring
        assert state.fault_fired_at == 0
        # One section honestly held + one phantom bit = pool exhausted.
        assert state.srp.srp_bitmask.find_first_zero() is None
        with pytest.raises(AssertionError):
            state.srp.check_invariants()


class TestFaultyWorkerTechnique:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown worker fault"):
            FaultyWorkerTechnique(mode="segfault")

    def test_crash_mode_requires_marker(self):
        with pytest.raises(FaultInjectionError, match="marker_path"):
            FaultyWorkerTechnique(mode="worker-crash")

    def test_sim_error_mode_raises_deterministically(self, tiny_config):
        technique = FaultyWorkerTechnique(mode="sim-error", message="boom")
        with pytest.raises(SimulationError, match="boom"):
            technique.prepare_kernel(srp_kernel(), tiny_config)

    def test_crash_mode_passes_through_once_marked(self, tiny_config, tmp_path):
        marker = tmp_path / "crashed"
        marker.write_text("123")  # "the retry": first attempt already died
        technique = FaultyWorkerTechnique(
            mode="worker-crash", marker_path=str(marker)
        )
        kernel = srp_kernel()
        assert technique.prepare_kernel(kernel, tiny_config) is kernel


class TestCacheCorruption:
    def _write_cache(self, path):
        import json

        payload = {
            "__cache_format__": 2,
            "entries": {"k1": {"record": {"cycles": 100}, "checksum": "x"}},
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)

    def test_truncate_halves_the_file(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._write_cache(path)
        size = os.path.getsize(path)
        corrupt_cache_file(path, "cache-truncate")
        assert os.path.getsize(path) == size // 2

    def test_garbage_makes_file_unparseable(self, tmp_path):
        import json

        path = str(tmp_path / "cache.json")
        self._write_cache(path)
        corrupt_cache_file(path, "cache-garbage")
        with pytest.raises(json.JSONDecodeError):
            with open(path) as fh:
                json.load(fh)

    def test_poison_bumps_record_not_checksum(self, tmp_path):
        import json

        path = str(tmp_path / "cache.json")
        self._write_cache(path)
        corrupt_cache_file(path, "cache-poison-entry")
        with open(path) as fh:
            raw = json.load(fh)
        entry = raw["entries"]["k1"]
        assert entry["record"]["cycles"] == 101
        assert entry["checksum"] == "x"  # stale on purpose

    def test_unknown_cache_kind_rejected(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._write_cache(path)
        with pytest.raises(FaultInjectionError, match="unknown cache fault"):
            corrupt_cache_file(path, "cache-set-on-fire")
