"""Golden-output test for the assembly printer.

Pins the exact textual format so downstream tooling (diffs, cache keys,
checked-in fixtures) doesn't silently change shape.
"""

from repro.isa.builder import KernelBuilder
from repro.isa.printer import format_kernel


def test_golden_listing():
    b = KernelBuilder(name="golden", regs_per_thread=6, threads_per_cta=64,
                      shared_mem_per_cta=512)
    b.ldc(0)
    b.ldc(1)
    b.label("loop").alu(2, 0, 1)
    b.setp(3, 2, 0)
    b.branch("loop", 3, trip_count=2)
    b.acquire()
    b.fma(4, 0, 1, 2)
    b.mov(5, 4, comment="compaction: R4 -> R5")
    b.release()
    b.barrier()
    b.store(0, 5)
    b.exit()
    kernel = b.build()

    expected = """.kernel golden
.regs 6
.threads 64
.smem 512
LDC R0
LDC R1
loop: IADD R2 ; R0,R1
ISETP R3 ; R2,R0
BRA  ; R3 -> loop @trips=2
REGMUTEX.ACQUIRE
FFMA R4 ; R0,R1,R2
MOV R5 ; R4  # compaction: R4 -> R5
REGMUTEX.RELEASE
BAR.SYNC
ST.GLOBAL  ; R0,R5
EXIT
"""
    assert format_kernel(kernel) == expected
