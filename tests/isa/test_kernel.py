"""Tests for the Kernel container and metadata."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel, KernelMetadata


def _mini(insts):
    return Kernel(insts, KernelMetadata(name="t", regs_per_thread=8))


class TestKernelMetadata:
    def test_defaults_valid(self):
        md = KernelMetadata()
        assert md.regs_per_thread > 0
        assert not md.uses_regmutex

    def test_split_must_sum(self):
        with pytest.raises(ValueError, match=r"\|Bs\|"):
            KernelMetadata(regs_per_thread=20, base_set_size=16, extended_set_size=2)

    def test_valid_split(self):
        md = KernelMetadata(regs_per_thread=20, base_set_size=14, extended_set_size=6)
        assert md.uses_regmutex

    def test_zero_extended_set_is_not_regmutex(self):
        md = KernelMetadata(regs_per_thread=20, base_set_size=20, extended_set_size=0)
        assert not md.uses_regmutex

    @pytest.mark.parametrize("field,value", [
        ("regs_per_thread", 0),
        ("threads_per_cta", 0),
        ("shared_mem_per_cta", -1),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            KernelMetadata(**{field: value})


class TestKernel:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Kernel([], KernelMetadata())

    def test_duplicate_label_rejected(self):
        insts = [
            Instruction(Opcode.NOP, label="a"),
            Instruction(Opcode.NOP, label="a"),
            Instruction(Opcode.EXIT),
        ]
        with pytest.raises(ValueError, match="duplicate label"):
            _mini(insts)

    def test_unresolved_target_rejected(self):
        insts = [Instruction(Opcode.JMP, target="nowhere"), Instruction(Opcode.EXIT)]
        with pytest.raises(ValueError, match="nowhere"):
            _mini(insts)

    def test_label_pc(self):
        insts = [
            Instruction(Opcode.NOP),
            Instruction(Opcode.NOP, label="here"),
            Instruction(Opcode.EXIT),
        ]
        k = _mini(insts)
        assert k.label_pc("here") == 1

    def test_referenced_registers(self, straight_kernel):
        refs = straight_kernel.referenced_registers()
        assert refs == set(range(straight_kernel.metadata.regs_per_thread))

    def test_validate_register_bound(self):
        insts = [Instruction(Opcode.IADD, (9,), (0,)), Instruction(Opcode.EXIT)]
        k = Kernel(insts, KernelMetadata(regs_per_thread=4))
        with pytest.raises(ValueError, match="R9"):
            k.validate_register_bound()

    def test_has_barrier(self, straight_kernel):
        assert not straight_kernel.has_barrier()
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0).barrier().exit()
        assert b.build().has_barrier()

    def test_with_metadata_preserves_instructions(self, straight_kernel):
        k2 = straight_kernel.with_metadata(name="renamed")
        assert k2.name == "renamed"
        assert k2.instructions == straight_kernel.instructions

    def test_exit_pcs(self, straight_kernel):
        (pc,) = straight_kernel.exit_pcs()
        assert straight_kernel[pc].is_exit


class TestSuccessorsOfPc:
    def test_straightline(self, straight_kernel):
        assert straight_kernel.successors_of_pc(0) == (1,)

    def test_exit_has_none(self, straight_kernel):
        (pc,) = straight_kernel.exit_pcs()
        assert straight_kernel.successors_of_pc(pc) == ()

    def test_conditional_branch_two_successors(self, loop_kernel):
        for pc, inst in enumerate(loop_kernel):
            if inst.is_conditional_branch:
                succs = loop_kernel.successors_of_pc(pc)
                assert len(succs) == 2
                assert pc + 1 in succs
                assert loop_kernel.label_pc(inst.target) in succs
                return
        pytest.fail("no conditional branch found")

    def test_jmp_single_successor(self, branch_kernel):
        for pc, inst in enumerate(branch_kernel):
            if inst.opcode is Opcode.JMP:
                assert branch_kernel.successors_of_pc(pc) == (
                    branch_kernel.label_pc(inst.target),
                )
                return
        pytest.fail("no JMP found")
