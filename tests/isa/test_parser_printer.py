"""Round-trip tests for the textual assembly parser/printer."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction, Opcode
from repro.isa.parser import AsmSyntaxError, parse_instruction, parse_kernel
from repro.isa.printer import format_instruction, format_kernel
from repro.workloads.suite import APPLICATIONS, build_app_kernel


class TestParseInstruction:
    def test_simple_alu(self):
        inst = parse_instruction("IADD R0 ; R1,R2")
        assert inst == Instruction(Opcode.IADD, (0,), (1, 2))

    def test_label(self):
        inst = parse_instruction("top: NOP")
        assert inst.label == "top"

    def test_branch_with_annotations(self):
        inst = parse_instruction("BRA ; R3 -> loop @p=0.25 @trips=7")
        assert inst.target == "loop"
        assert inst.taken_probability == 0.25
        assert inst.trip_count == 7

    def test_store_sources_only(self):
        inst = parse_instruction("ST.GLOBAL ; R1,R2")
        assert inst.dsts == ()
        assert inst.srcs == (1, 2)

    @pytest.mark.parametrize("bad", [
        "FROB R0",              # unknown opcode
        "IADD R0 ; Rx",         # bad register
        "BRA ; R0",             # branch without target
        "BRA ; R0 ->",          # empty target
        "top:",                 # label with no instruction
        "NOP @wat=3",           # unknown annotation
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(AsmSyntaxError):
            parse_instruction(bad, lineno=5)

    def test_error_carries_line_number(self):
        with pytest.raises(AsmSyntaxError, match="line 42"):
            parse_instruction("FROB", lineno=42)


class TestParseKernel:
    def test_directives(self):
        text = """
        .kernel myk
        .regs 12
        .threads 128
        .smem 4096
        LDC R0
        EXIT
        """
        k = parse_kernel(text)
        md = k.metadata
        assert (md.name, md.regs_per_thread, md.threads_per_cta,
                md.shared_mem_per_cta) == ("myk", 12, 128, 4096)

    def test_comments_stripped(self):
        k = parse_kernel("LDC R0  # define\nEXIT # done\n")
        assert len(k) == 2

    def test_empty_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_kernel("# nothing here\n")

    def test_bad_directive(self):
        with pytest.raises(AsmSyntaxError):
            parse_kernel(".bogus 3\nEXIT\n")

    def test_regs_raised_to_cover_references(self):
        k = parse_kernel(".regs 2\nLDC R9\nEXIT\n")
        assert k.metadata.regs_per_thread == 10


class TestRoundTrip:
    def test_handwritten_roundtrip(self):
        b = KernelBuilder(name="rt", regs_per_thread=8)
        b.ldc(0).ldc(1)
        b.label("loop").alu(2, 0, 1)
        b.branch("loop", 2, trip_count=3)
        b.acquire()
        b.fma(3, 0, 1, 2)
        b.release()
        b.barrier()
        b.store(0, 3)
        b.exit()
        k = b.build()
        assert parse_kernel(format_kernel(k)) == k

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_suite_kernels_roundtrip(self, app):
        k = build_app_kernel(APPLICATIONS[app])
        k2 = parse_kernel(format_kernel(k))
        assert k2 == k

    @given(st.lists(
        st.sampled_from([Opcode.IADD, Opcode.FMUL, Opcode.MOV]),
        min_size=1, max_size=20,
    ))
    def test_generated_alu_roundtrip(self, ops):
        insts = [Instruction(op, (i % 4,), ((i + 1) % 4,))
                 for i, op in enumerate(ops)]
        insts.append(Instruction(Opcode.EXIT))
        from repro.isa.kernel import Kernel, KernelMetadata
        k = Kernel(insts, KernelMetadata(regs_per_thread=4))
        assert parse_kernel(format_kernel(k)) == k

    def test_compiled_kernel_roundtrip(self):
        """Kernels carrying RegMutex primitives, moved labels, and
        compaction MOVs survive the textual round trip."""
        from repro.arch.config import GTX480
        from repro.compiler.pipeline import regmutex_compile
        from repro.workloads.suite import get_app, build_app_kernel
        spec = get_app("BFS")
        compiled = regmutex_compile(
            build_app_kernel(spec), GTX480, forced_es=spec.expected_es
        )
        parsed = parse_kernel(format_kernel(compiled))
        # Comments (compaction provenance) are stripped by the parser;
        # compare modulo comments.
        import dataclasses
        strip = lambda k: [dataclasses.replace(i, comment=None) for i in k]
        assert strip(parsed) == strip(compiled)
        assert parsed.labels == compiled.labels

    def test_comment_not_part_of_equality(self):
        inst = Instruction(Opcode.MOV, (0,), (1,), comment="compaction")
        text = format_instruction(inst)
        assert "# compaction" in text
        parsed = parse_instruction(text)
        assert parsed.opcode is Opcode.MOV
        assert parsed.dsts == (0,)
