"""Tests for the fluent kernel builder."""

import pytest

from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode


class TestKernelBuilder:
    def test_label_attaches_to_next_instruction(self):
        b = KernelBuilder()
        b.ldc(0).label("top").alu(1, 0).exit()
        k = b.build()
        assert k.label_pc("top") == 1

    def test_double_pending_label_rejected(self):
        b = KernelBuilder()
        b.label("a")
        with pytest.raises(ValueError, match="already pending"):
            b.label("b")

    def test_dangling_label_rejected(self):
        b = KernelBuilder()
        b.ldc(0).label("end")
        with pytest.raises(ValueError, match="dangling"):
            b.build()

    def test_declared_regs_raised_to_cover_references(self):
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(7).exit()
        assert b.build().metadata.regs_per_thread == 8

    def test_branch_annotations_survive(self):
        b = KernelBuilder()
        b.ldc(0).label("l").alu(0, 0)
        b.branch("l", 0, trip_count=3)
        b.exit()
        k = b.build()
        branches = [i for i in k if i.is_conditional_branch]
        assert branches[0].trip_count == 3

    def test_emitters_produce_expected_opcodes(self):
        b = KernelBuilder()
        b.ldc(0)
        b.load(1, 0)
        b.load(2, 0, shared=True)
        b.store(0, 1)
        b.store(0, 2, shared=True)
        b.mov(3, 1)
        b.fma(4, 1, 2, 3)
        b.setp(5, 0, 1)
        b.barrier()
        b.acquire()
        b.release()
        b.nop()
        b.exit()
        ops = [i.opcode for i in b.build()]
        assert ops == [
            Opcode.LDC, Opcode.LD_GLOBAL, Opcode.LD_SHARED,
            Opcode.ST_GLOBAL, Opcode.ST_SHARED, Opcode.MOV, Opcode.FFMA,
            Opcode.ISETP, Opcode.BAR_SYNC, Opcode.ACQUIRE, Opcode.RELEASE,
            Opcode.NOP, Opcode.EXIT,
        ]

    def test_store_has_no_destinations(self):
        b = KernelBuilder()
        b.ldc(0).store(0, 0).exit()
        store = b.build()[1]
        assert store.dsts == ()
        assert store.srcs == (0, 0)

    def test_len_tracks_instructions(self):
        b = KernelBuilder()
        assert len(b) == 0
        b.ldc(0)
        assert len(b) == 1

    def test_metadata_passthrough(self):
        b = KernelBuilder(
            name="x", regs_per_thread=10, threads_per_cta=128,
            shared_mem_per_cta=2048,
        )
        b.ldc(0).exit()
        md = b.build().metadata
        assert (md.name, md.regs_per_thread, md.threads_per_cta,
                md.shared_mem_per_cta) == ("x", 10, 128, 2048)
