"""Tests for the instruction set definition."""

import pytest

from repro.isa.instructions import (
    Instruction,
    OpClass,
    Opcode,
    OPCODE_CLASS,
    OPCODE_LATENCY,
)


class TestOpcodeTables:
    def test_every_opcode_has_class_and_latency(self):
        for op in Opcode:
            assert op in OPCODE_CLASS
            assert op in OPCODE_LATENCY
            assert OPCODE_LATENCY[op] >= 1

    def test_sfu_slower_than_ialu(self):
        assert OPCODE_LATENCY[Opcode.RSQRT] > OPCODE_LATENCY[Opcode.IADD]


class TestInstruction:
    def test_basic_alu(self):
        inst = Instruction(Opcode.IADD, (0,), (1, 2))
        assert inst.op_class is OpClass.IALU
        assert inst.registers == (0, 1, 2)
        assert not inst.is_branch
        assert not inst.is_memory

    def test_branch_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            Instruction(Opcode.BRA, srcs=(1,))

    def test_jmp_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            Instruction(Opcode.JMP)

    def test_exit_needs_no_target(self):
        inst = Instruction(Opcode.EXIT)
        assert inst.is_exit
        assert not inst.is_branch  # EXIT transfers nowhere

    def test_non_branch_rejects_target(self):
        with pytest.raises(ValueError, match="target"):
            Instruction(Opcode.IADD, (0,), (1,), target="x")

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IADD, (-1,), ())

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRA, srcs=(0,), target="t", taken_probability=1.5)

    def test_negative_trip_count_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRA, srcs=(0,), target="t", trip_count=-1)

    def test_classifiers(self):
        assert Instruction(Opcode.BAR_SYNC).is_barrier
        assert Instruction(Opcode.ACQUIRE).is_regmutex
        assert Instruction(Opcode.RELEASE).is_regmutex
        assert Instruction(Opcode.LD_GLOBAL, (0,), (1,)).is_memory
        assert Instruction(Opcode.ST_GLOBAL, (), (0, 1)).is_memory
        assert Instruction(Opcode.BRA, srcs=(0,), target="t").is_conditional_branch
        assert not Instruction(Opcode.JMP, target="t").is_conditional_branch

    def test_with_label(self):
        inst = Instruction(Opcode.IADD, (0,), (1,)).with_label("top")
        assert inst.label == "top"

    def test_renamed_maps_both_operand_lists(self):
        inst = Instruction(Opcode.FFMA, (9,), (9, 3, 4))
        renamed = inst.renamed({9: 1, 4: 0})
        assert renamed.dsts == (1,)
        assert renamed.srcs == (1, 3, 0)

    def test_renamed_keeps_unmapped(self):
        inst = Instruction(Opcode.IADD, (0,), (1, 2))
        assert inst.renamed({}) == inst

    def test_frozen(self):
        inst = Instruction(Opcode.IADD, (0,), (1,))
        with pytest.raises(AttributeError):
            inst.dsts = (5,)
