"""Tests for Register and RegisterSet."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import Register, RegisterSet


class TestRegister:
    def test_name(self):
        assert Register(3).name == "R3"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Register(-1)

    def test_parse_roundtrip(self):
        assert Register.parse("R17") == Register(17)
        assert Register.parse("r4") == Register(4)

    @pytest.mark.parametrize("bad", ["", "x3", "R", "R-1", "R3a", "3"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            Register.parse(bad)

    def test_ordering(self):
        assert Register(1) < Register(2)


class TestRegisterSet:
    def test_construction_dedupes_and_sorts(self):
        s = RegisterSet([3, 1, 3, 2])
        assert list(s) == [1, 2, 3]

    def test_accepts_register_objects(self):
        s = RegisterSet([Register(5), 2])
        assert 5 in s and 2 in s

    def test_range(self):
        assert list(RegisterSet.range(4)) == [0, 1, 2, 3]

    def test_contains_register(self):
        assert Register(2) in RegisterSet([2])

    def test_union_difference_intersection(self):
        a, b = RegisterSet([1, 2, 3]), RegisterSet([3, 4])
        assert list(a | b) == [1, 2, 3, 4]
        assert list(a - b) == [1, 2]
        assert list(a & b) == [3]

    def test_equality_with_plain_sets(self):
        assert RegisterSet([1, 2]) == {1, 2}

    def test_max_index_empty(self):
        assert RegisterSet().max_index() == -1

    def test_above_below(self):
        s = RegisterSet([0, 3, 7, 9])
        assert list(s.above(4)) == [7, 9]
        assert list(s.below(4)) == [0, 3]

    def test_free_slots_below(self):
        s = RegisterSet([0, 2, 5])
        assert s.free_slots_below(5) == (1, 3, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RegisterSet([-2])

    @given(st.sets(st.integers(min_value=0, max_value=64)),
           st.sets(st.integers(min_value=0, max_value=64)))
    def test_set_algebra_matches_builtin(self, a, b):
        ra, rb = RegisterSet(a), RegisterSet(b)
        assert set(ra | rb) == a | b
        assert set(ra - rb) == a - b
        assert set(ra & rb) == a & b

    @given(st.sets(st.integers(min_value=0, max_value=40)),
           st.integers(min_value=0, max_value=40))
    def test_above_below_partition(self, regs, boundary):
        s = RegisterSet(regs)
        assert set(s.above(boundary)) | set(s.below(boundary)) == regs
        assert not set(s.above(boundary)) & set(s.below(boundary))

    @given(st.sets(st.integers(min_value=0, max_value=30)),
           st.integers(min_value=0, max_value=30))
    def test_free_slots_disjoint_from_members(self, regs, boundary):
        s = RegisterSet(regs)
        free = set(s.free_slots_below(boundary))
        assert not free & regs
        assert free | (regs & set(range(boundary))) == set(range(boundary))
