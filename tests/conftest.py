"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF, fermi_like
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode


@pytest.fixture
def gtx480():
    return GTX480


@pytest.fixture
def gtx480_half():
    return GTX480_HALF_RF


@pytest.fixture
def tiny_config():
    """A small device for fast simulator tests: 1 SM, 8 warp slots."""
    return fermi_like(
        name="tiny",
        num_sms=1,
        max_warps_per_sm=8,
        max_ctas_per_sm=4,
        max_threads_per_sm=256,
        registers_per_sm=4096,
        shared_mem_per_sm=16 * 1024,
        dram_latency=80,
        l1_hit_latency=10,
    )


def straightline_kernel(n_alu: int = 8, regs: int = 4, name: str = "straight"):
    """R0..R{regs-1} defined, a chain of ALU ops, store, exit."""
    b = KernelBuilder(name=name, regs_per_thread=regs, threads_per_cta=64)
    for r in range(regs):
        b.ldc(r)
    for i in range(n_alu):
        b.alu(i % regs, (i + 1) % regs, (i + 2) % regs)
    b.store(0, 1)
    b.exit()
    return b.build()


def looped_kernel(trips: int = 4, body: int = 6, regs: int = 6, name: str = "looped"):
    """A single counted loop with a store afterwards."""
    b = KernelBuilder(name=name, regs_per_thread=regs, threads_per_cta=64)
    for r in range(regs):
        b.ldc(r)
    b.label("head")
    for i in range(body):
        b.alu(2 + (i % (regs - 2)), 0, 1)
    b.setp(1, 1, 0)
    b.branch("head", 1, trip_count=trips)
    b.store(0, 2)
    b.exit()
    return b.build()


def diamond_kernel(name: str = "diamond"):
    """if/else diamond: R2 defined before, used in the then-arm; R3
    defined in the then-arm, used after the join (Figure 3's shapes)."""
    b = KernelBuilder(name=name, regs_per_thread=6, threads_per_cta=64)
    b.ldc(0)
    b.ldc(1)
    b.ldc(2)          # live into the then-arm
    b.setp(1, 0, 1)
    b.branch("else_", 1, taken_probability=0.5)
    b.alu(3, 2, 0)    # then-arm: uses R2, defines R3
    b.jump("join")
    b.label("else_")
    b.alu(4, 0, 1)    # else-arm: unrelated
    b.label("join")
    b.alu(5, 3, 0)    # uses R3 after the join
    b.store(0, 5)
    b.exit()
    return b.build()


@pytest.fixture
def straight_kernel():
    return straightline_kernel()


@pytest.fixture
def loop_kernel():
    return looped_kernel()


@pytest.fixture
def branch_kernel():
    return diamond_kernel()
