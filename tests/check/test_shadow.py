"""Tests for the shadow architectural executor."""

from repro.isa.builder import KernelBuilder
from repro.check.shadow import ShadowState, attach_shadow, mix64
from repro.sim.warp import Warp
from repro.sim.rand import DeterministicRng


def _warp(wid=0, kernel=None):
    if kernel is None:
        b = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
        b.exit()
        kernel = b.build()
    return Warp(warp_id=wid, cta_id=0, kernel=kernel, rng=DeterministicRng(1))


def _feed(shadow, warp, instructions):
    for inst in instructions:
        shadow.observe(warp, inst)


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_order_sensitive(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_64_bit(self):
        assert 0 <= mix64(2**70, -5) < 2**64

    def test_empty_is_stable_seed(self):
        assert mix64() == 0x9E3779B97F4A7C15


def _chain_kernel(dst_map=None):
    """ldc -> alu chain -> store; dst_map renames register indices."""
    m = dst_map or {}
    r = lambda x: m.get(x, x)
    b = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
    b.ldc(r(0))
    b.ldc(r(1))
    b.alu(r(2), r(0), r(1))
    b.alu(r(3), r(2), r(0))
    b.store(r(0), r(3))
    b.exit()
    return b.build()


class TestStreamDigest:
    def test_identical_streams_identical_digests(self):
        a, b = ShadowState(), ShadowState()
        k = _chain_kernel()
        _feed(a, _warp(kernel=k), k.instructions)
        _feed(b, _warp(kernel=k), k.instructions)
        assert a.warp_streams() == b.warp_streams()
        assert a.memory_digest() == b.memory_digest()

    def test_different_dataflow_diverges(self):
        a, b = ShadowState(), ShadowState()
        ka = _chain_kernel()
        kb = KernelBuilder(regs_per_thread=8, threads_per_cta=32)
        kb.ldc(0)
        kb.ldc(1)
        kb.alu(2, 1, 1)  # different sources
        kb.alu(3, 2, 0)
        kb.store(0, 3)
        kb.exit()
        kb = kb.build()
        _feed(a, _warp(kernel=ka), ka.instructions)
        _feed(b, _warp(kernel=kb), kb.instructions)
        assert a.warp_streams() != b.warp_streams()

    def test_rename_invariance_via_movs(self):
        """A register renaming realized by plain index substitution has
        the same stream digest (values, not indices, are digested)."""
        a, b = ShadowState(), ShadowState()
        ka = _chain_kernel()
        kb = _chain_kernel(dst_map={2: 6, 3: 7})
        _feed(a, _warp(kernel=ka), ka.instructions)
        _feed(b, _warp(kernel=kb), kb.instructions)
        assert a.warp_streams() == b.warp_streams()
        assert a.memory_digest() == b.memory_digest()
        # The register *map* digest is index-sensitive and must differ.
        assert a.register_digest() != b.register_digest()

    def test_compaction_mov_is_transparent(self):
        """An injected compaction MOV copies the value but leaves the
        stream digest untouched."""
        from repro.isa.instructions import Instruction, Opcode

        a, b = ShadowState(), ShadowState()
        k = _chain_kernel()
        wa, wb = _warp(kernel=k), _warp(kernel=k)
        _feed(a, wa, k.instructions[:4])
        _feed(b, wb, k.instructions[:4])
        b.observe(wb, Instruction(
            Opcode.MOV, (5,), (3,), comment="compaction: R3 -> R5"
        ))
        assert a.warp_streams() == b.warp_streams()
        # ... but the copy executed: R5 now holds R3's value.
        assert b.regs[wb.warp_id][5] == b.regs[wb.warp_id][3]

    def test_plain_mov_is_digested(self):
        from repro.isa.instructions import Instruction, Opcode

        a, b = ShadowState(), ShadowState()
        k = _chain_kernel()
        wa, wb = _warp(kernel=k), _warp(kernel=k)
        _feed(a, wa, k.instructions[:4])
        _feed(b, wb, k.instructions[:4])
        b.observe(wb, Instruction(Opcode.MOV, (5,), (3,)))
        assert a.warp_streams() != b.warp_streams()

    def test_ldc_roots_are_warp_unique(self):
        shadow = ShadowState()
        k = _chain_kernel()
        w0, w1 = _warp(0, kernel=k), _warp(1, kernel=k)
        _feed(shadow, w0, k.instructions)
        _feed(shadow, w1, k.instructions)
        (w0_id, d0, c0), (w1_id, d1, c1) = shadow.warp_streams()
        assert (w0_id, w1_id) == (0, 1)
        assert c0 == c1
        assert d0 != d1  # warp-seeded LDC roots diverge the values
        # ... so the two warps' stores landed at distinct addresses.
        assert len(shadow.mem) == 2


class TestAttachShadow:
    def test_wraps_and_unwraps(self, tiny_config):
        from repro.sim.rand import DeterministicRng
        from repro.sim.sm import StreamingMultiprocessor
        from repro.sim.stats import SmStats
        from repro.sim.technique import SmTechniqueState
        from tests.conftest import straightline_kernel

        kernel = straightline_kernel()
        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=tiny_config, kernel=kernel,
            technique_state=SmTechniqueState(kernel, tiny_config, stats),
            ctas_resident_limit=1, total_ctas=1,
            rng=DeterministicRng(1), stats=stats,
        )
        shadow = attach_shadow(sm)
        assert sm.technique.inner is not None
        sm.run()
        streams = shadow.warp_streams()
        warps = (kernel.metadata.threads_per_cta + 31) // 32
        assert len(streams) == warps
        assert all(count > 0 for _, _, count in streams)
