"""Tests for the dynamic sanitizer (``GpuConfig.sanitizer``)."""

from types import SimpleNamespace

import pytest

from repro.arch.config import fermi_like
from repro.errors import SanitizerError
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction, Opcode
from repro.check.sanitizer import Sanitizer, SanitizerViolation
from repro.observe.bus import EventBus
from repro.observe.events import SANITIZER
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState


def _probe_kernel():
    b = KernelBuilder(name="probe", regs_per_thread=8, threads_per_cta=32)
    for r in range(4):
        b.ldc(r)
    b.acquire()
    b.alu(4, 0, 1)
    b.alu(5, 4, 2)
    b.mov(3, 5)
    b.release()
    b.store(0, 3)
    b.exit()
    return b.build().with_metadata(base_set_size=4, extended_set_size=4)


def _regmutex_sm(config, kernel=None, fail_fast=False):
    """An SM over a RegMutex state with a hand-held (not auto-armed)
    sanitizer, so tests can seed violations and inspect accumulation."""
    kernel = kernel or _probe_kernel()
    technique = RegMutexTechnique()
    stats = SmStats()
    sm = StreamingMultiprocessor(
        sm_id=0, config=config, kernel=kernel,
        technique_state=technique.make_sm_state(kernel, config, stats),
        ctas_resident_limit=1, total_ctas=1,
        rng=DeterministicRng(1), stats=stats,
    )
    return sm, Sanitizer(sm, fail_fast=fail_fast)


@pytest.fixture
def config():
    return fermi_like(
        name="tiny-sanitized", num_sms=1, max_warps_per_sm=8,
        max_ctas_per_sm=4, max_threads_per_sm=256,
        registers_per_sm=4096, dram_latency=80, l1_hit_latency=10,
    )


class TestPerIssueChecks:
    def test_extended_access_without_section(self, config):
        sm, san = _regmutex_sm(config)
        warp = sm.resident_ctas[0].warps[0]
        assert not warp.holds_extended_set
        inst = Instruction(Opcode.IADD, (5,), (0, 1))
        san.on_issue(warp, inst, cycle=3)
        (v,) = san.violations
        assert v.check == "extended-access"
        assert (v.warp_id, v.cycle) == (warp.warp_id, 3)
        assert "R5" in v.message

    def test_extended_access_legal_with_section(self, config):
        sm, san = _regmutex_sm(config)
        warp = sm.resident_ctas[0].warps[0]
        assert sm.technique.try_acquire(warp, cycle=0)
        san.on_issue(warp, Instruction(Opcode.IADD, (5,), (0, 1)), cycle=3)
        assert san.violations == []

    def test_scoreboard_hazard(self, config):
        sm, san = _regmutex_sm(config)
        warp = sm.resident_ctas[0].warps[0]
        sm.scoreboard.record_write(warp.warp_id, 1, ready_cycle=100)
        san.on_issue(warp, Instruction(Opcode.IADD, (2,), (1, 0)), cycle=3)
        assert any(v.check == "scoreboard-hazard" for v in san.violations)
        (v,) = [v for v in san.violations if v.check == "scoreboard-hazard"]
        assert "R1" in v.message

    def test_physical_bounds(self, config):
        kernel = _probe_kernel()

        class BrokenState(SmTechniqueState):
            def resolve_physical(self, warp, arch_reg):
                return 10**9

        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel,
            technique_state=BrokenState(kernel, config, stats),
            ctas_resident_limit=1, total_ctas=1,
            rng=DeterministicRng(1), stats=stats,
        )
        san = Sanitizer(sm, fail_fast=False)
        warp = sm.resident_ctas[0].warps[0]
        san.on_issue(warp, Instruction(Opcode.IADD, (0,), (1, 2)), cycle=1)
        assert any(v.check == "physical-bounds" for v in san.violations)

    def test_physical_aliasing_across_warps(self, config):
        kernel = _probe_kernel()

        class AliasingState(SmTechniqueState):
            def resolve_physical(self, warp, arch_reg):
                return arch_reg  # every warp lands on the same block

        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel,
            technique_state=AliasingState(kernel, config, stats),
            ctas_resident_limit=2, total_ctas=2,
            rng=DeterministicRng(1), stats=stats,
        )
        san = Sanitizer(sm, fail_fast=False)
        warps = [w for cta in sm.resident_ctas for w in cta.warps]
        assert len(warps) >= 2
        write = Instruction(Opcode.IADD, (0,), (1, 2))
        san.on_issue(warps[0], write, cycle=1)
        assert san.violations == []
        san.on_issue(warps[1], write, cycle=2)
        (v,) = san.violations
        assert v.check == "physical-aliasing"
        assert f"warp {warps[0].warp_id}" in v.message

    def test_claims_dropped_at_release(self, config):
        kernel = _probe_kernel()

        class AliasingState(SmTechniqueState):
            def resolve_physical(self, warp, arch_reg):
                return arch_reg

        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=config, kernel=kernel,
            technique_state=AliasingState(kernel, config, stats),
            ctas_resident_limit=2, total_ctas=2,
            rng=DeterministicRng(1), stats=stats,
        )
        san = Sanitizer(sm, fail_fast=False)
        warps = [w for cta in sm.resident_ctas for w in cta.warps]
        write = Instruction(Opcode.IADD, (0,), (1, 2))
        san.on_issue(warps[0], write, cycle=1)
        # RELEASE invalidates warp 0's mapping, so its claims drop and
        # warp 1's write to the same physical index is clean.
        san.on_issue(warps[0], Instruction(Opcode.RELEASE, (), ()), cycle=2)
        san.on_issue(warps[1], write, cycle=3)
        assert san.violations == []


class TestPerCycleChecks:
    def test_structural_invariant_after_srp_corruption(self, config):
        sm, san = _regmutex_sm(config)
        state = sm.technique
        state.srp.corrupt_for_fault_injection(set_section_bits=(0,))
        san.on_cycle(sm)
        assert any(v.check == "structural-invariant" for v in san.violations)

    def test_finished_warp_in_wait_queue(self, config):
        from repro.sim.warp import WarpStatus

        sm, san = _regmutex_sm(config)
        warp = sm.resident_ctas[0].warps[0]
        warp.status = WarpStatus.FINISHED
        sm.technique._wait_queue.append(warp)
        san.on_cycle(sm)
        assert any(v.check == "wait-queue" for v in san.violations)

    def test_duplicate_wait_queue_entry(self, config):
        sm, san = _regmutex_sm(config)
        warp = sm.resident_ctas[0].warps[0]
        sm.technique._wait_queue.extend([warp, warp])
        san.on_cycle(sm)
        assert any(
            v.check == "wait-queue" and "twice" in v.message
            for v in san.violations
        )

    def test_slot_accounting_leak(self, config):
        sm, san = _regmutex_sm(config)
        sm._occupied_slots.add(7)  # slot with no resident warp behind it
        san.on_cycle(sm)
        assert any(v.check == "slot-accounting" for v in san.violations)

    def test_stride_skips_off_cycles(self, config):
        stride_config = fermi_like(
            name="strided", num_sms=1, max_warps_per_sm=8,
            max_ctas_per_sm=4, max_threads_per_sm=256,
            registers_per_sm=4096, sanitizer_stride=16,
        )
        sm, san = _regmutex_sm(stride_config)
        sm.technique.srp.corrupt_for_fault_injection(set_section_bits=(0,))
        sm.cycle = 7  # not a multiple of the stride
        san.on_cycle(sm)
        assert san.violations == []
        sm.cycle = 16
        san.on_cycle(sm)
        assert san.violations


class TestReporting:
    def test_fail_fast_raises_with_diagnostic(self, config):
        sm, san = _regmutex_sm(config, fail_fast=True)
        sm.technique.srp.corrupt_for_fault_injection(set_section_bits=(0,))
        with pytest.raises(SanitizerError) as exc_info:
            san.on_cycle(sm)
        err = exc_info.value
        assert err.violations
        assert isinstance(err.violations[0], SanitizerViolation)
        assert err.diagnostic is not None

    def test_violations_accumulate_without_fail_fast(self, config):
        sm, san = _regmutex_sm(config)
        warp = sm.resident_ctas[0].warps[0]
        san.on_issue(warp, Instruction(Opcode.IADD, (5,), (0, 1)), cycle=1)
        san.on_issue(warp, Instruction(Opcode.IADD, (6,), (0, 1)), cycle=2)
        assert len(san.violations) == 2
        assert [v.cycle for v in san.violations] == [1, 2]

    def test_violation_lands_on_event_bus(self, config):
        sm, san = _regmutex_sm(config)
        bus = EventBus()
        events = []
        bus.subscribe(events.append, SANITIZER)
        sm._observer = SimpleNamespace(bus=bus)
        warp = sm.resident_ctas[0].warps[0]
        san.on_issue(warp, Instruction(Opcode.IADD, (5,), (0, 1)), cycle=9)
        (event,) = events
        assert event.kind == SANITIZER
        assert event.cycle == 9
        assert event.warp_id == warp.warp_id
        assert event.detail.startswith("extended-access:")


class TestEndToEnd:
    def test_config_flag_arms_sanitizer(self, config):
        import dataclasses

        armed = dataclasses.replace(config, sanitizer=True)
        kernel = _probe_kernel()
        technique = RegMutexTechnique()
        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=0, config=armed, kernel=kernel,
            technique_state=technique.make_sm_state(kernel, armed, stats),
            ctas_resident_limit=1, total_ctas=1,
            rng=DeterministicRng(1), stats=stats,
        )
        assert sm._sanitizer is not None
        sm.run()  # a clean compiled kernel is sanitizer-silent

    def test_unwraps_observer_and_shadow_layers(self, config):
        from repro.check.shadow import attach_shadow
        from repro.regmutex.issue_logic import RegMutexSmState

        sm, san = _regmutex_sm(config)
        attach_shadow(sm)
        attach_shadow(sm)  # two wrapper layers
        assert isinstance(san._state(), RegMutexSmState)
