"""The PR-2 fault campaign re-run with the sanitizer armed.

Every simulator-layer fault must now be caught by a *typed* detector
with provenance: the SRP corruptions by the sanitizer's structural
check (previously they needed ``debug_invariants`` or had to grind into
the deadlock detectors), the schedule-level unbalanced acquire by the
deadlock machinery (its structures stay self-consistent — correctly
not the sanitizer's catch).
"""

import pytest

from repro.check.adversarial import (
    _classify,
    _probe_kernel,
    _sanitized_sim_scenarios,
    run_adversarial_campaign,
)
from repro.compiler.verification import verify_regmutex_safety
from repro.errors import (
    InvariantViolationError,
    SanitizerError,
    SimulationDeadlockError,
)
from repro.check.sanitizer import SanitizerViolation


class TestProbeKernel:
    def test_probe_is_contract_clean(self):
        """The adversarial probe must be sanitizer-silent when healthy:
        no extended register touched outside the acquire region."""
        kernel = _probe_kernel()
        result = verify_regmutex_safety(kernel, kernel.metadata.base_set_size)
        assert result.ok, result.violations


class TestClassification:
    def test_sanitizer_error_classified_with_provenance(self):
        violation = SanitizerViolation(
            "structural-invariant", "boom", cycle=29, warp_id=3, pc=7
        )
        detector, detail = _classify(
            SanitizerError("sanitizer: boom", violations=(violation,))
        )
        assert detector == "sanitizer"
        assert "cycle 29" in detail and "warp 3" in detail

    def test_invariant_error_classified(self):
        detector, _ = _classify(InvariantViolationError("cycle 5: bad"))
        assert detector == "invariant-checker"

    def test_deadlock_classified(self):
        detector, _ = _classify(SimulationDeadlockError("SM 0 deadlocked"))
        assert detector == "deadlock-check"
        detector, _ = _classify(
            SimulationDeadlockError("watchdog: no progress")
        )
        assert detector == "watchdog"


class TestSanitizedScenarios:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return _sanitized_sim_scenarios(seed=2018)

    def test_all_sim_faults_detected(self, outcomes):
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert outcome.detected, f"{outcome.scenario}: {outcome.detail}"
            assert outcome.detector, outcome.scenario

    def test_srp_corruptions_caught_by_sanitizer(self, outcomes):
        by_name = {o.scenario: o for o in outcomes}
        for scenario in (
            "lost-release/wakeup", "lost-release/eager",
            "srp-bit-flip/sanitizer",
        ):
            outcome = by_name[scenario]
            assert outcome.detector == "sanitizer", outcome.detail
            assert "cycle" in outcome.detail  # provenance made it through

    def test_self_consistent_fault_left_to_deadlock_detectors(self, outcomes):
        outcome = next(
            o for o in outcomes if o.scenario == "unbalanced-acquire/barrier"
        )
        assert outcome.detector in ("deadlock-check", "watchdog")

    def test_detection_is_fast(self, outcomes):
        """The sanitizer catches corruption within cycles of injection,
        not after a watchdog window."""
        for outcome in outcomes:
            if outcome.detector == "sanitizer":
                assert outcome.cycles is not None and outcome.cycles < 1000


class TestFullCampaign:
    def test_ten_of_ten_caught_and_classified(self):
        outcomes = run_adversarial_campaign(seed=2018, workers=2)
        assert len(outcomes) == 10
        for outcome in outcomes:
            assert outcome.detected, f"{outcome.scenario}: {outcome.detail}"
            assert outcome.detector, outcome.scenario
