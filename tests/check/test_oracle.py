"""Tests for the differential execution oracle."""

import json
from pathlib import Path

import pytest

from repro.check.oracle import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_SCHEMA,
    ORACLE_TECHNIQUES,
    SMOKE_APPS,
    TechniqueTrace,
    check_apps,
    compare_golden,
    compare_traces,
    golden_path,
    golden_payload,
    run_technique_trace,
    write_golden,
)
from repro.workloads.suite import APPLICATIONS


def _trace(technique, *, streams=((0, 11, 5), (1, 22, 5)), mem=0x33,
           regs=0x44, error=None):
    return TechniqueTrace(
        app="Synthetic", technique=technique, cycles=100, instructions=10,
        total_ctas=2, warp_streams=streams, memory_digest=mem,
        register_digest=regs, error=error,
    )


class TestCompareTraces:
    def test_identical_traces_equivalent(self):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        assert compare_traces(traces) == []

    def test_stream_divergence_reported(self):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        traces["regmutex"] = _trace(
            "regmutex", streams=((0, 99, 5), (1, 22, 5))
        )
        (mismatch,) = compare_traces(traces)
        assert "regmutex" in mismatch and "warp 0" in mismatch

    def test_retired_count_divergence_reported(self):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        traces["paired"] = _trace("paired", streams=((0, 11, 7), (1, 22, 5)))
        (mismatch,) = compare_traces(traces)
        assert "retired 7 vs 5" in mismatch

    def test_memory_divergence_reported(self):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        traces["rfv"] = _trace("rfv", mem=0x99)
        mismatches = compare_traces(traces)
        assert any("memory" in m for m in mismatches)

    def test_register_map_checked_only_for_non_renaming(self):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        # RegMutex redistributes indices legally: no mismatch.
        traces["regmutex"] = _trace("regmutex", regs=0x99)
        assert compare_traces(traces) == []
        # OWF does not rename: divergence is a finding.
        traces["owf"] = _trace("owf", regs=0x99)
        mismatches = compare_traces(traces)
        assert any("owf" in m and "register map" in m for m in mismatches)

    def test_failed_run_reported(self):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        traces["paired"] = _trace("paired", error="deadlock: stuck")
        mismatches = compare_traces(traces)
        assert any("paired: run failed" in m for m in mismatches)


class TestGoldenSnapshots:
    def test_round_trip(self, tmp_path):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        payload = golden_payload("Synthetic", traces, seed=2018)
        path = golden_path(tmp_path, "Synthetic")
        write_golden(path, payload)
        assert compare_golden(path, payload) == []

    def test_drift_detected_field_level(self, tmp_path):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        payload = golden_payload("Synthetic", traces, seed=2018)
        path = golden_path(tmp_path, "Synthetic")
        write_golden(path, payload)
        traces["rfv"] = _trace("rfv", mem=0x99)
        drifted = golden_payload("Synthetic", traces, seed=2018)
        diffs = compare_golden(path, drifted)
        assert diffs and all("rfv" in d for d in diffs)

    def test_missing_file_reported(self, tmp_path):
        traces = {name: _trace(name) for name in ORACLE_TECHNIQUES}
        payload = golden_payload("Synthetic", traces, seed=2018)
        diffs = compare_golden(tmp_path / "nope.json", payload)
        assert diffs and "--update-golden" in diffs[0]

    def test_checked_in_goldens_cover_all_apps(self):
        golden_dir = Path(__file__).parent / "golden"
        assert golden_dir == Path.cwd() / DEFAULT_GOLDEN_DIR or golden_dir.exists()
        for app in APPLICATIONS:
            path = golden_path(golden_dir, app)
            assert path.exists(), f"golden snapshot missing for {app}"
            stored = json.loads(path.read_text())
            assert stored["schema"] == GOLDEN_SCHEMA
            assert set(stored["techniques"]) == set(ORACLE_TECHNIQUES)
            for fields in stored["techniques"].values():
                assert fields["stream"].startswith("0x")
                assert fields["memory"].startswith("0x")
                assert fields["cycles"] > 0

    def test_smoke_apps_are_table1_apps(self):
        assert set(SMOKE_APPS) <= set(APPLICATIONS)


class TestOracleRuns:
    def test_techniques_equivalent_on_instrumented_app(self):
        """DWT2D is occupancy-limited, so regmutex/paired genuinely run
        remapped, compacted kernels — and must still match baseline."""
        traces = {
            name: run_technique_trace("DWT2D", name)
            for name in ORACLE_TECHNIQUES
        }
        assert compare_traces(traces) == []
        base = traces["baseline"]
        assert base.warp_streams and base.memory_digest
        # RegMutex actually did something: extra compaction/primitive
        # instructions issued on top of the same semantic stream.
        assert traces["regmutex"].instructions > base.instructions

    def test_check_apps_against_checked_in_golden(self):
        (result,) = check_apps(
            apps=("DWT2D",), golden_dir=Path(__file__).parent / "golden"
        )
        assert result.ok, (
            result.equivalence_mismatches + result.golden_mismatches
        )

    def test_check_apps_update_golden(self, tmp_path):
        (result,) = check_apps(
            apps=("Gaussian",), golden_dir=tmp_path, update_golden=True
        )
        assert result.golden_updated
        assert golden_path(tmp_path, "Gaussian").exists()
        # Immediately re-checking against the fresh snapshot passes.
        (again,) = check_apps(apps=("Gaussian",), golden_dir=tmp_path)
        assert again.ok
