"""Tests for CFG construction."""

import pytest

from repro.cfg.graph import build_cfg
from repro.isa.builder import KernelBuilder
from repro.workloads.suite import APPLICATIONS, build_app_kernel


class TestBuildCfg:
    def test_straightline(self, straight_kernel):
        cfg = build_cfg(straight_kernel)
        assert len(cfg.blocks) == 1
        assert cfg.successors[0] == ()
        assert cfg.exit_blocks() == (0,)

    def test_loop_back_edge(self, loop_kernel):
        cfg = build_cfg(loop_kernel)
        body = cfg.block_of_pc(loop_kernel.label_pc("head")).index
        assert body in cfg.successors[body]  # self-loop

    def test_diamond_shape(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        entry = cfg.entry
        succs = cfg.successors[entry]
        assert len(succs) == 2  # then + else
        join = cfg.block_of_pc(branch_kernel.label_pc("join")).index
        for arm in succs:
            assert join in cfg.successors[arm]

    def test_predecessors_inverse_of_successors(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        for src, dsts in cfg.successors.items():
            for dst in dsts:
                assert src in cfg.predecessors[dst]
        for dst, srcs in cfg.predecessors.items():
            for src in srcs:
                assert dst in cfg.successors[src]

    def test_block_of_pc_covers_all(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        for pc in range(len(branch_kernel)):
            block = cfg.block_of_pc(pc)
            assert block.start <= pc < block.end

    def test_block_of_pc_out_of_range(self, straight_kernel):
        cfg = build_cfg(straight_kernel)
        with pytest.raises(IndexError):
            cfg.block_of_pc(len(straight_kernel))

    def test_reverse_post_order_starts_at_entry(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        order = cfg.reverse_post_order()
        assert order[0] == cfg.entry
        assert sorted(order) == [b.index for b in cfg.blocks]

    def test_rpo_visits_predecessors_first_in_dags(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        pos = {b: i for i, b in enumerate(cfg.reverse_post_order())}
        for src, dsts in cfg.successors.items():
            for dst in dsts:
                if dst != src and pos[dst] < pos[src]:
                    # only back edges may go "up" in RPO; the diamond has none
                    pytest.fail(f"forward edge {src}->{dst} inverted in RPO")

    def test_conditional_fallthrough_ordering(self):
        # Not-taken successor must come first (used by divergence logic).
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.branch("skip", 0, taken_probability=0.5)
        b.ldc(1)
        b.label("skip").exit()
        cfg = build_cfg(b.build())
        succs = cfg.successors[cfg.entry]
        assert cfg.blocks[succs[0]].start == 2  # fall-through first

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_suite_kernels_build_connected_cfgs(self, app):
        kernel = build_app_kernel(APPLICATIONS[app])
        cfg = build_cfg(kernel)
        order = cfg.reverse_post_order()
        assert len(order) == len(cfg.blocks)
        assert cfg.exit_blocks(), "kernel must reach EXIT"
