"""Tests for basic-block splitting."""

import pytest

from repro.cfg.basic_blocks import split_into_blocks
from repro.isa.builder import KernelBuilder


class TestSplitIntoBlocks:
    def test_straightline_is_one_block(self, straight_kernel):
        blocks = split_into_blocks(straight_kernel)
        assert len(blocks) == 1
        assert blocks[0].start == 0
        assert blocks[0].end == len(straight_kernel)

    def test_loop_produces_three_blocks(self, loop_kernel):
        blocks = split_into_blocks(loop_kernel)
        # preheader (defs), loop body, post-loop
        assert len(blocks) == 3
        head = loop_kernel.label_pc("head")
        assert blocks[1].start == head

    def test_blocks_cover_kernel_exactly(self, branch_kernel):
        blocks = split_into_blocks(branch_kernel)
        covered = []
        for b in blocks:
            covered.extend(b.pcs)
        assert covered == list(range(len(branch_kernel)))

    def test_block_indices_sequential(self, branch_kernel):
        blocks = split_into_blocks(branch_kernel)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_branch_targets_are_leaders(self, branch_kernel):
        blocks = split_into_blocks(branch_kernel)
        starts = {b.start for b in blocks}
        for inst in branch_kernel:
            if inst.is_branch:
                assert branch_kernel.label_pc(inst.target) in starts

    def test_instruction_after_branch_is_leader(self, branch_kernel):
        blocks = split_into_blocks(branch_kernel)
        starts = {b.start for b in blocks}
        for pc, inst in enumerate(branch_kernel):
            if inst.is_branch and pc + 1 < len(branch_kernel):
                assert pc + 1 in starts

    def test_exit_mid_kernel_splits(self):
        b = KernelBuilder(regs_per_thread=2)
        b.ldc(0)
        b.exit()
        b.label("dead").ldc(1)
        b.exit()
        blocks = split_into_blocks(b.build())
        assert len(blocks) == 2

    def test_block_len(self, straight_kernel):
        (block,) = split_into_blocks(straight_kernel)
        assert len(block) == len(straight_kernel)
