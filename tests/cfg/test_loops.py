"""Tests for natural-loop detection."""

from repro.cfg.graph import build_cfg
from repro.cfg.loops import find_natural_loops, loop_nesting_depth
from repro.isa.builder import KernelBuilder


def nested_loop_kernel():
    b = KernelBuilder(regs_per_thread=6)
    for r in range(4):
        b.ldc(r)
    b.label("outer")
    b.alu(1, 0)
    b.label("inner")
    b.alu(2, 1)
    b.setp(3, 2, 1)
    b.branch("inner", 3, trip_count=2)
    b.setp(3, 1, 0)
    b.branch("outer", 3, trip_count=2)
    b.exit()
    return b.build()


class TestNaturalLoops:
    def test_straightline_has_no_loops(self, straight_kernel):
        assert find_natural_loops(build_cfg(straight_kernel)) == []

    def test_single_loop(self, loop_kernel):
        cfg = build_cfg(loop_kernel)
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        head = cfg.block_of_pc(loop_kernel.label_pc("head")).index
        assert loops[0].header == head
        assert head in loops[0]

    def test_nested_loops(self):
        kernel = nested_loop_kernel()
        cfg = build_cfg(kernel)
        loops = find_natural_loops(cfg)
        assert len(loops) == 2
        inner_head = cfg.block_of_pc(kernel.label_pc("inner")).index
        outer_head = cfg.block_of_pc(kernel.label_pc("outer")).index
        by_header = {l.header: l for l in loops}
        # The inner loop body is contained in the outer loop body.
        assert by_header[inner_head].body <= by_header[outer_head].body

    def test_nesting_depth(self):
        kernel = nested_loop_kernel()
        cfg = build_cfg(kernel)
        depth = loop_nesting_depth(cfg)
        inner_head = cfg.block_of_pc(kernel.label_pc("inner")).index
        outer_head = cfg.block_of_pc(kernel.label_pc("outer")).index
        exit_block = cfg.block_of_pc(len(kernel) - 1).index
        assert depth[inner_head] == 2
        assert depth[outer_head] == 1
        assert depth[exit_block] == 0

    def test_loop_size(self, loop_kernel):
        cfg = build_cfg(loop_kernel)
        (loop,) = find_natural_loops(cfg)
        assert loop.size == len(loop.body)
