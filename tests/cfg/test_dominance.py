"""Tests for dominator and post-dominator trees."""

import pytest

from repro.cfg.dominance import (
    VIRTUAL_EXIT,
    dominator_tree,
    post_dominator_tree,
)
from repro.cfg.graph import build_cfg
from repro.isa.builder import KernelBuilder
from repro.workloads.suite import APPLICATIONS, build_app_kernel


class TestDominators:
    def test_entry_dominates_everything(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        dom = dominator_tree(cfg)
        for b in cfg.blocks:
            assert dom.dominates(cfg.entry, b.index)

    def test_dominance_is_reflexive(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        dom = dominator_tree(cfg)
        for b in cfg.blocks:
            assert dom.dominates(b.index, b.index)

    def test_arms_do_not_dominate_join(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        dom = dominator_tree(cfg)
        join = cfg.block_of_pc(branch_kernel.label_pc("join")).index
        then_blk, else_blk = cfg.successors[cfg.entry]
        assert not dom.dominates(then_blk, join)
        assert not dom.dominates(else_blk, join)

    def test_idom_of_join_is_branch_block(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        dom = dominator_tree(cfg)
        join = cfg.block_of_pc(branch_kernel.label_pc("join")).index
        assert dom.immediate(join) == cfg.entry

    def test_root_has_no_immediate(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        dom = dominator_tree(cfg)
        assert dom.immediate(cfg.entry) is None

    def test_loop_header_dominates_body(self, loop_kernel):
        cfg = build_cfg(loop_kernel)
        dom = dominator_tree(cfg)
        head = cfg.block_of_pc(loop_kernel.label_pc("head")).index
        post = cfg.block_of_pc(len(loop_kernel) - 1).index
        assert dom.dominates(head, post)


class TestPostDominators:
    def test_virtual_exit_post_dominates_everything(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        pdom = post_dominator_tree(cfg)
        for b in cfg.blocks:
            assert pdom.dominates(VIRTUAL_EXIT, b.index)

    def test_join_post_dominates_arms(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        pdom = post_dominator_tree(cfg)
        join = cfg.block_of_pc(branch_kernel.label_pc("join")).index
        for arm in cfg.successors[cfg.entry]:
            assert pdom.dominates(join, arm)

    def test_ipdom_of_branch_is_join(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        pdom = post_dominator_tree(cfg)
        join = cfg.block_of_pc(branch_kernel.label_pc("join")).index
        assert pdom.immediate(cfg.entry) == join

    def test_multiple_exits_handled(self):
        b = KernelBuilder(regs_per_thread=3)
        b.ldc(0)
        b.branch("alt", 0, taken_probability=0.5)
        b.exit()
        b.label("alt").ldc(1)
        b.exit()
        cfg = build_cfg(b.build())
        pdom = post_dominator_tree(cfg)
        # Neither exit block post-dominates the entry; only VIRTUAL_EXIT does.
        assert pdom.immediate(cfg.entry) == VIRTUAL_EXIT

    @pytest.mark.parametrize("app", sorted(APPLICATIONS)[:4])
    def test_suite_kernels_have_consistent_trees(self, app):
        kernel = build_app_kernel(APPLICATIONS[app])
        cfg = build_cfg(kernel)
        dom = dominator_tree(cfg)
        pdom = post_dominator_tree(cfg)
        for b in cfg.blocks:
            assert dom.dominates(cfg.entry, b.index)
            assert pdom.dominates(VIRTUAL_EXIT, b.index)


class TestDominatorChains:
    def test_dominators_of_walks_to_root(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        dom = dominator_tree(cfg)
        join = cfg.block_of_pc(branch_kernel.label_pc("join")).index
        chain = dom.dominators_of(join)
        assert chain[0] == join
        assert chain[-1] == cfg.entry
        # Every element dominates the previous one.
        for closer, further in zip(chain, chain[1:]):
            assert dom.dominates(further, closer)

    def test_post_dominator_chain_reaches_virtual_exit(self, branch_kernel):
        cfg = build_cfg(branch_kernel)
        pdom = post_dominator_tree(cfg)
        chain = pdom.dominators_of(cfg.entry)
        assert chain[-1] == VIRTUAL_EXIT
