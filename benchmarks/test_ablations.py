"""Ablation benches for the design choices called out in DESIGN.md §5.

Not figures from the paper — these isolate our implementation's moving
parts so a reader can see which mechanism buys what:

* **scheduler policy** — greedy-then-oldest (the paper's baseline) vs
  loose round-robin, under RegMutex contention;
* **acquire retry policy** — parking blocked warps until a release
  ("wakeup", the default) vs re-polling every issue round ("eager");
* **index compaction** — with the MOV-insertion pass vs without.
"""

import pytest

from repro.arch.config import GTX480
from repro.harness.reporting import format_table, percent
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import build_app_kernel, get_app
from benchmarks.conftest import run_once

# Two contended apps and one uncontended, to show the policies only
# matter when the SRP is scarce.
APPS = ("BFS", "SAD", "ParticleFilter")


def _sweep(runner, technique_factory):
    out = {}
    for app in APPS:
        spec = get_app(app)
        kernel = build_app_kernel(spec)
        base = runner.run(kernel, GTX480, BaselineTechnique())
        rm = runner.run(kernel, GTX480, technique_factory(spec))
        out[app] = rm.reduction_vs(base)
    return out


def test_ablation_scheduler_policy(benchmark, runner):
    lrr_config = GTX480.with_scheduler("lrr")

    def run():
        gto = _sweep(runner, lambda s: RegMutexTechnique(extended_set_size=s.expected_es))
        lrr = {}
        for app in APPS:
            spec = get_app(app)
            kernel = build_app_kernel(spec)
            base = runner.run(kernel, lrr_config, BaselineTechnique())
            rm = runner.run(
                kernel, lrr_config,
                RegMutexTechnique(extended_set_size=spec.expected_es),
            )
            lrr[app] = rm.reduction_vs(base)
        return gto, lrr

    gto, lrr = run_once(benchmark, run)
    print("\n" + format_table(
        ["app", "reduction (GTO)", "reduction (LRR)"],
        [[a, percent(gto[a]), percent(lrr[a])] for a in APPS],
        title="Ablation — scheduler policy under RegMutex",
    ))
    # Both policies must preserve the win on the uncontended app.
    assert gto["BFS"] > 0.10 and lrr["BFS"] > 0.10


def test_ablation_retry_policy(benchmark, runner):
    def run():
        wakeup = _sweep(
            runner,
            lambda s: RegMutexTechnique(
                extended_set_size=s.expected_es, retry_policy="wakeup"
            ),
        )
        eager = _sweep(
            runner,
            lambda s: RegMutexTechnique(
                extended_set_size=s.expected_es, retry_policy="eager"
            ),
        )
        return wakeup, eager

    wakeup, eager = run_once(benchmark, run)
    print("\n" + format_table(
        ["app", "reduction (wakeup)", "reduction (eager)"],
        [[a, percent(wakeup[a]), percent(eager[a])] for a in APPS],
        title="Ablation — blocked-acquire retry policy",
    ))
    # On the uncontended app the policies are equivalent (acquires never
    # fail); under contention, eager polling burns issue slots, so it
    # must not win by a meaningful margin anywhere.
    assert abs(wakeup["BFS"] - eager["BFS"]) < 0.02
    for app in ("SAD", "ParticleFilter"):
        assert eager[app] <= wakeup[app] + 0.03, app


def test_ablation_index_compaction(benchmark, runner):
    def run():
        with_c = _sweep(
            runner,
            lambda s: RegMutexTechnique(
                extended_set_size=s.expected_es, enable_compaction=True
            ),
        )
        without_c = _sweep(
            runner,
            lambda s: RegMutexTechnique(
                extended_set_size=s.expected_es, enable_compaction=False
            ),
        )
        return with_c, without_c

    with_c, without_c = run_once(benchmark, run)
    print("\n" + format_table(
        ["app", "reduction (compaction)", "reduction (no compaction)"],
        [[a, percent(with_c[a]), percent(without_c[a])] for a in APPS],
        title="Ablation — architected index compaction",
    ))
    # The MOV overhead is tiny; turning compaction off must not change
    # the headline shape (it trades a few MOVs for nothing in our
    # simulator, since timing does not read physical indices).
    for app in APPS:
        assert abs(with_c[app] - without_c[app]) < 0.05, app
