"""Extension — register-file energy at iso-work (backing §IV-B's pitch).

Not a paper figure: the paper cites Jeon et al.'s 20-30% register-file
power savings when halving the file and argues RegMutex makes the
smaller file *affordable* by absorbing the performance loss.  This bench
quantifies that with the first-order energy model: leakage halves with
the array, and because RegMutex keeps the runtime near baseline, the
total register-file energy drops — whereas the bare half-file
configuration gives some of the leakage win back by running longer.
"""

from repro.arch.config import GTX480
from repro.energy.model import compare_energy, estimate_register_file_energy
from repro.harness.reporting import format_table, percent
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import build_app_kernel, get_app
from benchmarks.conftest import run_once

APPS = ("Gaussian", "SPMV", "MonteCarlo", "SRAD")


def test_energy_extension(benchmark, runner):
    half = GTX480.with_half_register_file()

    def run():
        out = {}
        for app in APPS:
            spec = get_app(app)
            kernel = build_app_kernel(spec)
            full = runner.run(kernel, GTX480, BaselineTechnique())
            bare = runner.run(kernel, half, BaselineTechnique())
            rm = runner.run(
                kernel, half,
                RegMutexTechnique(extended_set_size=spec.expected_es),
            )
            e_full = estimate_register_file_energy(full, GTX480)
            e_bare = estimate_register_file_energy(bare, half)
            e_rm = estimate_register_file_energy(rm, half)
            out[app] = (
                compare_energy(e_full, e_bare),
                compare_energy(e_full, e_rm),
            )
        return out

    results = run_once(benchmark, run)

    print("\n" + format_table(
        ["app", "total dE bare half-RF", "total dE RegMutex half-RF",
         "static dE (both)"],
        [[app, percent(bare["total"]), percent(rm["total"]),
          percent(rm["static"])]
         for app, (bare, rm) in results.items()],
        title="Extension — register-file energy vs full-file baseline",
    ))

    for app, (bare, rm) in results.items():
        # RegMutex on the half file: clear total-energy win.
        assert rm["total"] < -0.05, app
        # And at least as good as the bare half file (it never runs
        # longer than bare, so leakage can only help).
        assert rm["total"] <= bare["total"] + 0.01, app
        # Static component tracks the array size, but is diluted by the
        # longer runtime on the bare configuration.
        assert rm["static"] < bare["static"] + 0.01, app
