"""Figure 9 — comparison with OWF (Jatala et al.) and RFV (Jeon et al.).

Paper shape, baseline architecture (9a): average reductions 1.9% (OWF),
16.2% (RFV), 12.8% (RegMutex) — both RFV and RegMutex far ahead of OWF,
RFV modestly ahead of RegMutex (at >81x the storage cost).

Half register file (9b): average increases 22.9% (nothing), 20.6% (OWF),
5.9% (RFV), 10.8% (RegMutex).
"""

from repro.harness.experiments import (
    fig9a_comparison_baseline,
    fig9b_comparison_half_rf,
)
from repro.harness.reporting import format_table, percent
from benchmarks.conftest import run_once


def test_fig9a_comparison_baseline(benchmark, runner):
    rows = run_once(benchmark, fig9a_comparison_baseline, runner)

    print("\n" + format_table(
        ["app", "OWF", "RFV", "RegMutex"],
        [[r.app, percent(r.reduction_owf), percent(r.reduction_rfv),
          percent(r.reduction_regmutex)] for r in rows],
        title="Figure 9a — cycle reduction vs baseline (higher is better)",
    ))
    n = len(rows)
    avg_owf = sum(r.reduction_owf for r in rows) / n
    avg_rfv = sum(r.reduction_rfv for r in rows) / n
    avg_rm = sum(r.reduction_regmutex for r in rows) / n
    print(f"averages: OWF {percent(avg_owf)} (paper +1.9%), "
          f"RFV {percent(avg_rfv)} (paper +16.2%), "
          f"RegMutex {percent(avg_rm)} (paper +12.8%)")

    assert n == 8
    # Ordering: RFV >= RegMutex >> OWF.
    assert avg_rfv >= avg_rm
    assert avg_rm > avg_owf + 0.05
    # Magnitudes in the paper's neighbourhood.
    assert -0.05 <= avg_owf <= 0.08
    assert 0.10 <= avg_rfv <= 0.25
    assert 0.08 <= avg_rm <= 0.20


def test_fig9b_comparison_half_rf(benchmark, runner):
    rows = run_once(benchmark, fig9b_comparison_half_rf, runner)

    print("\n" + format_table(
        ["app", "no technique", "OWF", "RFV", "RegMutex"],
        [[r.app, percent(r.increase_none), percent(r.increase_owf),
          percent(r.increase_rfv), percent(r.increase_regmutex)]
         for r in rows],
        title="Figure 9b — cycle increase on half RF (lower is better)",
    ))
    n = len(rows)
    avg_none = sum(r.increase_none for r in rows) / n
    avg_owf = sum(r.increase_owf for r in rows) / n
    avg_rfv = sum(r.increase_rfv for r in rows) / n
    avg_rm = sum(r.increase_regmutex for r in rows) / n
    print(f"averages: none {percent(avg_none)} (paper +22.9%), "
          f"OWF {percent(avg_owf)} (paper +20.6%), "
          f"RFV {percent(avg_rfv)} (paper +5.9%), "
          f"RegMutex {percent(avg_rm)} (paper +10.8%)")

    assert n == 8
    # Ordering: nothing ~ OWF (worst) > RegMutex > RFV (best).
    assert avg_none > avg_rm
    assert avg_owf > avg_rm
    assert avg_rm >= avg_rfv - 0.02
    # RegMutex recovers more than half of the bare slowdown.
    assert avg_rm < avg_none * 0.65
