"""Figure 13 — acquire success rate, default RegMutex vs paired-warps.

Paper shape: the specialization's guaranteed partner raises the success
rate relative to the communal pool on contended apps (the left 8 apps
run on the baseline architecture, the right 8 on the halved file).
"""

from repro.harness.experiments import fig13_acquire_success
from repro.harness.reporting import format_table
from benchmarks.conftest import run_once


def test_fig13_acquire_success(benchmark, runner):
    rows = run_once(benchmark, fig13_acquire_success, runner)

    print("\n" + format_table(
        ["app", "architecture", "success (default)", "success (paired)"],
        [[r.app, r.arch, f"{r.success_default:.0%}",
          f"{r.success_paired:.0%}"] for r in rows],
        title="Figure 13 — successful acquires among all acquire attempts",
    ))

    assert len(rows) == 16
    assert sum(r.arch == "baseline" for r in rows) == 8
    assert sum(r.arch == "half-rf" for r in rows) == 8

    for r in rows:
        assert 0.0 <= r.success_default <= 1.0
        assert 0.0 <= r.success_paired <= 1.0

    # On the apps where the communal pool is contended, pairing's
    # exclusive-partner guarantee raises the success rate.
    contended = [r for r in rows if r.success_default < 0.9]
    assert contended, "expected at least one contended app"
    improved = sum(
        r.success_paired > r.success_default - 0.02 for r in contended
    )
    assert improved >= len(contended) // 2
