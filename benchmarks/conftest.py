"""Shared fixtures for the figure-regeneration benchmark suite.

All benchmarks share one :class:`ExperimentRunner` with an on-disk cache
next to the repository root, so a full ``pytest benchmarks/`` pass
simulates each (app, config, technique) combination exactly once and
re-runs are instant.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import ExperimentRunner

_CACHE = os.path.join(os.path.dirname(__file__), os.pardir, ".bench_cache.json")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(cache_path=os.path.abspath(_CACHE))


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment driver with a single timed round.

    The interesting output is the experiment's rows (asserted by each
    bench); the timing records how long regenerating the figure takes.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
