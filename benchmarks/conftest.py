"""Shared fixtures for the figure-regeneration benchmark suite.

All benchmarks share one :class:`ExperimentRunner` with an on-disk cache
next to the repository root, so a full ``pytest benchmarks/`` pass
simulates each (app, config, technique) combination exactly once and
re-runs are instant.  The cache is persisted once, when the session
ends (atomic write), instead of after every run.

Set ``REPRO_BENCH_WORKERS=N`` (N > 1) to prewarm the cache through the
orchestrator before the first benchmark: the whole figure suite's job
set is deduplicated and simulated on N processes, and the benchmarks
then measure cached row building.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import ExperimentRunner

_CACHE = os.path.join(os.path.dirname(__file__), os.pardir, ".bench_cache.json")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    r = ExperimentRunner(cache_path=os.path.abspath(_CACHE))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    if workers > 1:
        from repro.harness.experiments import FIGURE_SPECS
        from repro.harness.orchestrator import Orchestrator

        Orchestrator(r, workers=workers).run_specs(
            [build() for build in FIGURE_SPECS.values()]
        )
    yield r
    r.flush()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment driver with a single timed round.

    The interesting output is the experiment's rows (asserted by each
    bench); the timing records how long regenerating the figure takes.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
