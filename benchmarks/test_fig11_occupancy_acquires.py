"""Figure 11 — theoretical occupancy (a) and successful-acquire ratio (b)
as |Es| varies.

Paper shape: "as |Es| gets larger, occupancy increases but the chance of
a successful acquire usually reduces" — the two adversarial effects the
heuristic balances.
"""

from repro.harness.experiments import fig11_occupancy_and_acquires
from repro.harness.reporting import format_table
from benchmarks.conftest import run_once


def test_fig11_occupancy_and_acquires(benchmark, runner):
    rows = run_once(benchmark, fig11_occupancy_and_acquires, runner)

    by_app: dict[str, list] = {}
    for r in rows:
        by_app.setdefault(r.app, []).append(r)
    for entries in by_app.values():
        entries.sort(key=lambda r: r.es)

    print("\nFigure 11a — theoretical occupancy per |Es|")
    es_values = sorted({r.es for r in rows})
    print(format_table(
        ["app"] + [f"|Es|={e}" for e in es_values],
        [[app, *[f"{e.theoretical_occupancy:.0%}" for e in entries]]
         for app, entries in by_app.items()],
    ))
    print("\nFigure 11b — successful acquires per |Es|")
    print(format_table(
        ["app"] + [f"|Es|={e}" for e in es_values],
        [[app, *[f"{e.acquire_success_rate:.0%}" for e in entries]]
         for app, entries in by_app.items()],
    ))

    assert len(by_app) == 8
    falls = 0
    for app, entries in by_app.items():
        active = [e for e in entries if e.active]
        assert active, app  # Table I's |Es| is always in the sweep
        # (a) among the |Es| values the deadlock rules accept, occupancy
        # is non-decreasing in |Es| (a larger extended set shrinks the
        # exclusively-held base set; rejected sizes fall back to the
        # lower baseline occupancy and are excluded).
        occ = [e.theoretical_occupancy for e in active]
        assert all(b >= a - 1e-9 for a, b in zip(occ, occ[1:])), app
        # (b) count the apps where the success rate falls from the
        # smallest to the largest accepted |Es| — the paper's "usually
        # reduces" (not a per-app law: when occupancy is capped by
        # another resource, a larger |Es| only adds SRP sections and the
        # success rate can rise instead, e.g. HotSpot3D).
        success = [e.acquire_success_rate for e in active]
        if success[-1] <= success[0] + 1e-9:
            falls += 1
    assert falls >= 4, f"success rate fell on only {falls}/8 apps"

    # Somewhere in the suite the success-rate penalty is substantial —
    # that is what makes |Es| selection an actual trade-off.
    assert any(
        min(e.acquire_success_rate for e in entries) < 0.75
        for entries in by_app.values()
    )
