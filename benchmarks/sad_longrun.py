"""SAD long-run microbenchmark: the issue-path throughput yardstick.

Runs the SAD app (the suite's longest-running kernel) on a single
GTX480 SM under RegMutex, seed 2018, 8 total CTAs — enough cycles
(~310k) that steady-state issue-path cost dominates and per-run noise
sits under a percent.  Reports wall time and cycles/sec, best of
``--repeat`` runs, and (unless ``--no-artifact``) writes a schema-1
perf artifact per engine — ``BENCH_sad_<engine>.json`` — so the
scan/event/columnar trajectory is committed alongside BENCH_seed.json
(which stays the orchestrator baseline).

Usage::

    PYTHONPATH=src python benchmarks/sad_longrun.py \
        [--engine scan|event|columnar] [--repeat 3] [--all-engines] \
        [--artifact-dir DIR] [--no-artifact]

PR 3 measured the scan stepper at 8.883s on its machine; absolute
seconds are machine-dependent, so compare engines on the *same*
machine (PROFILING.md records one such 3-way set).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace

from repro.arch.config import GTX480
from repro.observe.perf import PERF_ARTIFACT_VERSION, artifact_filename
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.gpu import Gpu
from repro.sim.sm import ISSUE_ENGINE_REGISTRY
from repro.workloads.suite import build_app_kernel, get_app

TOTAL_CTAS = 8
SEED = 2018
# Discovered from the sm.py engine registry: a new engine gets
# benchmarked (and picked up by --all-engines) without editing this
# script.  Ordered slowest-first so --all-engines prints a trajectory.
_PREFERRED_ORDER = ("scan", "event", "columnar", "native")
ENGINES = tuple(
    sorted(
        ISSUE_ENGINE_REGISTRY,
        key=lambda e: (
            _PREFERRED_ORDER.index(e) if e in _PREFERRED_ORDER else 99
        ),
    )
)


def run_once(engine: str) -> tuple[int, float]:
    config = replace(GTX480, num_sms=1, issue_engine=engine)
    technique = RegMutexTechnique()
    gpu = Gpu(config, technique, seed=SEED)
    kernel = build_app_kernel(get_app("SAD"))
    start = time.perf_counter()
    result = gpu.launch(kernel, TOTAL_CTAS)
    elapsed = time.perf_counter() - start
    return result.cycles, elapsed


def bench_engine(engine: str, repeat: int) -> dict:
    """Run one engine ``repeat`` times; return a schema-1 perf artifact.

    Shaped exactly like ``repro.observe.perf.perf_artifact`` output so
    ``load_perf_artifact`` / ``compare_perf_artifacts`` (and therefore
    ``repro bench --baseline --fail-threshold``) accept these files as
    baselines too.  Totals use the best run — the microbenchmark tracks
    the engine's ceiling, not scheduler jitter on a busy machine.
    """
    jobs = []
    best: float | None = None
    cycles = 0
    for i in range(repeat):
        cycles, elapsed = run_once(engine)
        print(f"run {i + 1}: {cycles} cycles in {elapsed:.3f}s "
              f"({cycles / elapsed:,.0f} cycles/sec)")
        jobs.append({
            "label": f"SAD/longrun/{engine}/run{i + 1}",
            "mode": "inline",
            "seconds": round(elapsed, 6),
            "cycles": cycles,
            "cycles_per_sec": round(cycles / elapsed, 1),
            "failed": False,
            "failure_kind": None,
            "attempts": 1,
        })
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    print(f"best [{engine}]: {cycles} cycles in {best:.3f}s "
          f"({cycles / best:,.0f} cycles/sec)")
    return {
        "schema": PERF_ARTIFACT_VERSION,
        "label": f"sad_{engine}",
        "workers": 1,
        "wall_seconds": round(sum(j["seconds"] for j in jobs), 6),
        "cache": {"hits": 0, "misses": len(jobs), "hit_rate": 0.0},
        "totals": {
            "jobs": len(jobs),
            "failures": 0,
            "sim_seconds": round(best, 6),
            "cycles": cycles,
            "cycles_per_sec": round(cycles / best, 1),
        },
        "failure_kinds": {},
        "jobs": jobs,
    }


def write_artifact(artifact: dict, directory: str) -> str:
    path = os.path.join(directory, artifact_filename(artifact["label"]))
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", choices=ENGINES, default="event")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--all-engines", action="store_true",
        help="benchmark all three engines back-to-back (same process, "
             "same machine state) instead of just --engine",
    )
    parser.add_argument(
        "--artifact-dir", default=".", metavar="DIR",
        help="directory for BENCH_sad_<engine>.json (default: repo root)",
    )
    parser.add_argument(
        "--no-artifact", action="store_true",
        help="skip writing the per-engine perf artifact",
    )
    args = parser.parse_args()
    if args.repeat <= 0:
        parser.error("--repeat must be positive")

    engines = ENGINES if args.all_engines else (args.engine,)
    for engine in engines:
        artifact = bench_engine(engine, args.repeat)
        if not args.no_artifact:
            path = write_artifact(artifact, args.artifact_dir)
            print(f"(perf artifact written to {path})")


if __name__ == "__main__":
    main()
