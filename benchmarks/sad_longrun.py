"""SAD long-run microbenchmark: the issue-path throughput yardstick.

Runs the SAD app (the suite's longest-running kernel) on a single
GTX480 SM under RegMutex, seed 2018, 8 total CTAs — enough cycles
(~310k) that steady-state issue-path cost dominates and per-run noise
sits under a percent.  Reports wall time and cycles/sec, best of
``--repeat`` runs.

Usage::

    PYTHONPATH=src python benchmarks/sad_longrun.py [--engine event|scan]
                                                    [--repeat 3]

PR 3 measured the scan stepper at 8.883s on its machine; absolute
seconds are machine-dependent, so compare engines on the *same*
machine (PROFILING.md records one such pair).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import replace

from repro.arch.config import GTX480
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.gpu import Gpu
from repro.workloads.suite import build_app_kernel, get_app

TOTAL_CTAS = 8
SEED = 2018


def run_once(engine: str) -> tuple[int, float]:
    config = replace(GTX480, num_sms=1, issue_engine=engine)
    technique = RegMutexTechnique()
    gpu = Gpu(config, technique, seed=SEED)
    kernel = build_app_kernel(get_app("SAD"))
    start = time.perf_counter()
    result = gpu.launch(kernel, TOTAL_CTAS)
    elapsed = time.perf_counter() - start
    return result.cycles, elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", choices=("event", "scan"), default="event")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()

    best: float | None = None
    cycles = 0
    for i in range(args.repeat):
        cycles, elapsed = run_once(args.engine)
        print(f"run {i + 1}: {cycles} cycles in {elapsed:.3f}s "
              f"({cycles / elapsed:,.0f} cycles/sec)")
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    print(f"best [{args.engine}]: {cycles} cycles in {best:.3f}s "
          f"({cycles / best:,.0f} cycles/sec)")


if __name__ == "__main__":
    main()
