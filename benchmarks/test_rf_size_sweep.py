"""Extension — register-file size sweep (generalizing §IV-B).

Not a paper figure: the paper evaluates exactly one shrunken file
(half).  This bench sweeps the file from 100% down to 37.5% and shows
the claim behind "approximately the same performance with a smaller
register file": RegMutex's slowdown curve stays well under the bare
curve, and it keeps kernels placeable at sizes where they still fit.
"""

from repro.analysis.sweeps import register_file_size_sweep
from repro.harness.reporting import format_table, percent
from benchmarks.conftest import run_once

APPS = ("Gaussian", "SPMV", "MonteCarlo")


def test_rf_size_sweep(benchmark, runner):
    def run():
        return {app: register_file_size_sweep(runner, app) for app in APPS}

    results = run_once(benchmark, run)

    rows = []
    for app, points in results.items():
        for p in points:
            rows.append([
                app, f"{p.scale:.0%}", p.registers_per_sm,
                percent(p.increase_baseline) if p.fits_baseline else "n/a",
                percent(p.increase_regmutex) if p.fits_regmutex else "n/a",
                f"{p.regmutex_recovery:.0%}" if p.fits_baseline and p.fits_regmutex else "-",
            ])
    print("\n" + format_table(
        ["app", "RF scale", "regs/SM", "slowdown bare", "slowdown RegMutex",
         "recovered"],
        rows,
        title="Extension — register file size sweep",
    ))

    for app, points in results.items():
        full = points[0]
        assert full.scale == 1.0
        # At full size both run and neither is slower than itself.
        assert abs(full.increase_baseline) < 0.02, app
        for p in points[1:]:
            if not (p.fits_baseline and p.fits_regmutex):
                continue
            # Smaller file never helps the baseline...
            assert p.increase_baseline >= -0.02, (app, p.scale)
            # ...and RegMutex never does meaningfully worse than bare.
            assert p.increase_regmutex <= p.increase_baseline + 0.05, (
                app, p.scale
            )
        # Somewhere in the sweep RegMutex recovers a substantial chunk.
        best = max(
            (p.regmutex_recovery for p in points[1:]
             if p.fits_baseline and p.fits_regmutex and
             p.increase_baseline > 0.03),
            default=0.0,
        )
        assert best > 0.3, app
