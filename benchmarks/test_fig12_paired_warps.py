"""Figure 12 — the paired-warps specialization.

Paper shape: (a) on the baseline architecture paired-warps reduces
cycles by ≈ 8% on average — ≈ 4 points below default RegMutex — and is
effective only where it still boosts occupancy; (b) on the half file it
lands between no-technique (+23%) and default RegMutex, trailing the
default by ≈ 8 points.
"""

from repro.harness.experiments import fig12_paired_warps
from repro.harness.reporting import format_table, percent
from benchmarks.conftest import run_once


def test_fig12a_paired_baseline(benchmark, runner):
    rows = run_once(benchmark, fig12_paired_warps, runner, half_rf=False)

    print("\n" + format_table(
        ["app", "paired reduction", "default reduction", "paired occupancy"],
        [[r.app, percent(r.metric), percent(r.metric_default),
          f"{r.occupancy_paired:.0%}"] for r in rows],
        title="Figure 12a — paired-warps on the baseline architecture",
    ))
    n = len(rows)
    avg_paired = sum(r.metric for r in rows) / n
    avg_default = sum(r.metric_default for r in rows) / n
    print(f"averages: paired {percent(avg_paired)} (paper +8%), "
          f"default {percent(avg_default)} (paper +12%)")

    assert n == 8
    # Paired-warps trails the default mode on average (less sharing
    # flexibility), but remains clearly positive.
    assert avg_paired < avg_default
    assert 0.02 <= avg_paired <= 0.15
    # The gap is moderate (paper: ~4 points), not a collapse.
    assert avg_default - avg_paired < 0.10
    # Where pairing preserves the occupancy boost it stays competitive
    # with the default mode (within a couple of points).
    competitive = [
        r for r in rows if r.metric > 0.05
    ]
    assert competitive
    for r in competitive:
        assert r.metric > r.metric_default - 0.06, r.app


def test_fig12b_paired_half_rf(benchmark, runner):
    rows = run_once(benchmark, fig12_paired_warps, runner, half_rf=True)

    print("\n" + format_table(
        ["app", "paired increase", "default increase", "paired occupancy"],
        [[r.app, percent(r.metric), percent(r.metric_default),
          f"{r.occupancy_paired:.0%}"] for r in rows],
        title="Figure 12b — paired-warps on half RF (vs full-file baseline)",
    ))
    n = len(rows)
    avg_paired = sum(r.metric for r in rows) / n
    avg_default = sum(r.metric_default for r in rows) / n
    print(f"averages: paired {percent(avg_paired)} (paper +17%), "
          f"default {percent(avg_default)} (paper +9%)")

    assert n == 8
    # Default RegMutex outperforms the specialization on half RF
    # (paper: default better by ~8 points).
    assert avg_default <= avg_paired
    # But pairing still recovers a meaningful part of the bare slowdown:
    # compare against the no-technique increase from the Figure 8 data.
    from repro.harness.experiments import fig8_half_register_file
    bare = fig8_half_register_file(runner)
    avg_none = sum(r.increase_no_technique for r in bare) / len(bare)
    assert avg_paired < avg_none
