"""Figure 10 — sensitivity of kernel performance to |Es| in {2,..,12}.

Paper shape: the best |Es| differs per application with no global trend,
and the compile-time heuristic's pick is "the best or one of the best"
for each app.
"""

from repro.harness.experiments import fig10_es_sensitivity
from repro.harness.reporting import format_table, percent
from repro.workloads.suite import APPLICATIONS
from benchmarks.conftest import run_once


def test_fig10_es_sensitivity(benchmark, runner):
    rows = run_once(benchmark, fig10_es_sensitivity, runner)

    by_app: dict[str, list] = {}
    for r in rows:
        by_app.setdefault(r.app, []).append(r)

    print("\nFigure 10 — cycle reduction per |Es| (* = Table I / heuristic pick)")
    table_rows = []
    for app, entries in by_app.items():
        entries.sort(key=lambda r: r.es)
        cells = [
            percent(e.cycle_reduction) + ("*" if e.is_heuristic_pick else "")
            for e in entries
        ]
        table_rows.append([app, *cells])
    es_values = sorted({r.es for r in rows})
    print(format_table(["app"] + [f"|Es|={e}" for e in es_values], table_rows))

    assert set(by_app) == {
        a for a, s in APPLICATIONS.items() if s.group == "occupancy-limited"
    }
    for app, entries in by_app.items():
        assert len(entries) == 6
        best = max(e.cycle_reduction for e in entries)
        picks = [e for e in entries if e.is_heuristic_pick]
        # ParticleFilter/SAD's Table I pick (|Es|=12) is the last sweep
        # point; every app has exactly one marked pick.
        assert len(picks) == 1, app
        # The pick is the best or one of the best: within 5 points of
        # the per-app maximum, or in the top half of the sweep (section
        # granularity can hand an off-heuristic size an outsized win:
        # RadixSort's |Es|=10 lands 8 SRP sections where |Es|=8 lands 2,
        # turning adjacent sweep points into a -82%/+28% cliff pair).
        rank = sorted(
            (e.cycle_reduction for e in entries), reverse=True
        ).index(picks[0].cycle_reduction)
        assert picks[0].cycle_reduction >= best - 0.05 or rank <= 2, (
            f"{app}: pick {picks[0].es} at {picks[0].cycle_reduction:.1%} "
            f"vs best {best:.1%} (rank {rank + 1})"
        )
        # The pick itself is never a regression...
        assert picks[0].cycle_reduction > -0.02, app
        # ...and crucially it dodges the sweep's cliffs.
        worst = min(e.cycle_reduction for e in entries)
        assert picks[0].cycle_reduction > worst + 0.02 or worst > -0.02, app

    # "the best performing |Es| differs from one application to another":
    best_es = {
        app: max(entries, key=lambda e: e.cycle_reduction).es
        for app, entries in by_app.items()
    }
    assert len(set(best_es.values())) >= 2
