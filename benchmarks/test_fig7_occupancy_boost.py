"""Figure 7 — execution-cycle reduction and occupancy boost on the
baseline architecture, for the 8 register-limited applications.

Paper shape: average reduction ≈ 13%, BFS the largest at ≈ 23%, SAD
muted despite the same occupancy boost (SRP-section contention), and
occupancy never decreasing.
"""

from repro.harness.experiments import fig7_occupancy_boost
from repro.harness.reporting import format_table, percent
from benchmarks.conftest import run_once


def test_fig7_occupancy_boost(benchmark, runner):
    rows = run_once(benchmark, fig7_occupancy_boost, runner)

    print("\n" + format_table(
        ["app", "cycle reduction", "occupancy init", "occupancy RegMutex",
         "acquire success"],
        [[r.app, percent(r.cycle_reduction), f"{r.occupancy_init:.0%}",
          f"{r.occupancy_regmutex:.0%}", f"{r.acquire_success_rate:.0%}"]
         for r in rows],
        title="Figure 7 — RegMutex on the baseline GTX480",
    ))
    avg = sum(r.cycle_reduction for r in rows) / len(rows)
    print(f"average reduction: {percent(avg)}  (paper: +13%)")

    assert len(rows) == 8
    by_app = {r.app: r for r in rows}

    # Occupancy boost on every app (that is why these 8 were selected).
    for r in rows:
        assert r.occupancy_regmutex > r.occupancy_init, r.app

    # Average in the paper's neighbourhood.
    assert 0.08 <= avg <= 0.20

    # BFS is the biggest winner (paper: up to 23%).
    best = max(rows, key=lambda r: r.cycle_reduction)
    assert best.app == "BFS"
    assert best.cycle_reduction >= 0.18

    # SAD and ParticleFilter gain far less than their occupancy boost
    # would suggest — SRP contention (the paper's §IV-A discussion).
    for muted in ("SAD", "ParticleFilter"):
        assert by_app[muted].cycle_reduction < avg, muted
        assert by_app[muted].acquire_success_rate < 0.9, muted

    # No app collapses (worst case stays above a mild regression bound).
    for r in rows:
        assert r.cycle_reduction > -0.05, r.app
