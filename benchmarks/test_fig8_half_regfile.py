"""Figure 8 — resilience on an architecture with half the register file.

Paper shape: without any technique the 8 register-relaxed apps slow down
by ≈ 23% on the 64 KB file; with RegMutex the average increase drops to
≈ 9%; MergeSort is the one app the heuristic cannot help (its pick does
not raise occupancy, leaving only instruction overhead).
"""

from repro.harness.experiments import fig8_half_register_file
from repro.harness.reporting import format_table, percent
from benchmarks.conftest import run_once


def test_fig8_half_register_file(benchmark, runner):
    rows = run_once(benchmark, fig8_half_register_file, runner)

    print("\n" + format_table(
        ["app", "increase (no technique)", "increase (RegMutex)",
         "occupancy bare", "occupancy RegMutex"],
        [[r.app, percent(r.increase_no_technique),
          percent(r.increase_regmutex),
          f"{r.occupancy_half_no_technique:.0%}",
          f"{r.occupancy_half_regmutex:.0%}"] for r in rows],
        title="Figure 8 — half register file (64 KB/SM), vs full-file baseline",
    ))
    n = len(rows)
    avg_none = sum(r.increase_no_technique for r in rows) / n
    avg_rm = sum(r.increase_regmutex for r in rows) / n
    print(f"average increase: no technique {percent(avg_none)} "
          f"(paper +23%), RegMutex {percent(avg_rm)} (paper +9%)")

    assert n == 8
    # Halving the file hurts, and RegMutex absorbs most of it.
    assert avg_none > 0.10
    assert avg_rm < avg_none * 0.60
    # Per-app: RegMutex never does *worse* than bare half-RF by much
    # (MergeSort may show a slight overhead-only slowdown).
    for r in rows:
        assert r.increase_regmutex <= r.increase_no_technique + 0.03, r.app
    # Occupancy recovered on most apps (7 of 8 in the paper).
    recovered = sum(
        r.occupancy_half_regmutex > r.occupancy_half_no_technique
        for r in rows
    )
    assert recovered >= 6
    # MergeSort: no occupancy gain from Table I's split at this geometry.
    merge = next(r for r in rows if r.app == "MergeSort")
    assert merge.occupancy_half_regmutex == merge.occupancy_half_no_technique
