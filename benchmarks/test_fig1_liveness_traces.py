"""Figure 1 — per-thread register liveness utilization traces.

Regenerates the six single-thread utilization-over-instructions series
the paper uses to motivate register time-sharing, and asserts the
motivating shape: utilization is well below 100% most of the time and
fluctuates strongly.
"""

from repro.harness.experiments import fig1_liveness_traces
from repro.harness.reporting import format_percent_series
from benchmarks.conftest import run_once


def test_fig1_liveness_traces(benchmark):
    rows = run_once(benchmark, fig1_liveness_traces)

    print("\nFigure 1 — live registers / allocated registers (one thread)")
    for row in rows:
        print(format_percent_series(row.app, row.utilization_series))
        print(f"{'':<16}  {row.instructions_executed} dyn insts, "
              f"mean {row.mean_utilization:.0%}, "
              f"at-peak {row.fraction_at_peak:.0%}")

    assert len(rows) == 6
    for row in rows:
        # "for the majority of the program execution only subsets of the
        # requested registers are alive"
        assert row.mean_utilization < 0.80, row.app
        assert row.fraction_at_peak < 0.50, row.app
        # "register utilization may fluctuate constantly"
        assert row.max_utilization - row.min_utilization > 0.30, row.app
        # The peak does approach the full allocation (the reservation is
        # not gratuitous — it is needed *somewhere*).
        assert row.max_utilization > 0.85, row.app
