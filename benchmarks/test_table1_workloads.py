"""Table I — workloads, per-thread registers, and |Bs|.

Regenerates the paper's workload table and checks it cell-for-cell
against the published values.
"""

from repro.harness.experiments import table1_workloads
from repro.harness.reporting import format_table
from benchmarks.conftest import run_once

PAPER_TABLE1 = {
    "BFS": (21, 18), "CUTCP": (25, 20), "DWT2D": (44, 38),
    "HotSpot3D": (32, 24), "MRI-Q": (21, 18), "ParticleFilter": (32, 20),
    "RadixSort": (33, 30), "SAD": (30, 20),
    "Gaussian": (12, 8), "HeartWall": (28, 20), "LavaMD": (37, 28),
    "MergeSort": (15, 12), "MonteCarlo": (13, 12), "SPMV": (16, 12),
    "SRAD": (18, 12), "TPACF": (28, 20),
}


def test_table1_workloads(benchmark):
    rows = run_once(benchmark, table1_workloads)

    print("\n" + format_table(
        ["app", "suite", "# regs", "(rounded)", "|Bs|", "|Es|",
         "SRP sections", "heuristic agrees"],
        [[r.app, r.suite, r.regs, r.regs_rounded, r.bs, r.es,
          r.srp_sections, r.heuristic_agrees] for r in rows],
        title="Table I — workloads",
    ))

    assert len(rows) == 16
    for row in rows:
        regs, bs = PAPER_TABLE1[row.app]
        assert row.regs == regs, row.app
        assert row.bs == bs, row.app
        assert row.es == row.regs_rounded - row.bs, row.app
        # Deadlock rule 1 holds for every app at Table I's split.
        assert row.srp_sections >= 1, row.app
    # The heuristic reproduces Table I wherever launch geometry allows
    # (12 of 16 apps; the rest are documented in DESIGN.md).
    assert sum(r.heuristic_agrees for r in rows) >= 12
