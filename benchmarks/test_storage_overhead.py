"""§III-B1 / §IV-C — hardware storage overhead comparison.

Paper numbers: RegMutex adds 384 bits per SM; RFV needs 30,240 bits of
renaming table plus 1,024 availability bits (>81x more); the paired
specialization keeps only an Nw/2-bit bitmask.
"""

from repro.arch.config import GTX480
from repro.harness.experiments import storage_overhead_comparison
from repro.harness.reporting import format_table
from benchmarks.conftest import run_once


def test_storage_overhead(benchmark):
    budgets = run_once(benchmark, storage_overhead_comparison, GTX480)

    print("\n" + format_table(
        ["technique", "structure", "bits"],
        [[name, part, bits]
         for name, budget in budgets.items()
         for part, bits in budget.parts] +
        [[name, "TOTAL", budget.total_bits] for name, budget in budgets.items()],
        title="Added per-SM storage",
    ))

    assert budgets["regmutex"].total_bits == 384
    assert budgets["rfv"].total_bits == 30240 + 1024
    assert budgets["regmutex"].ratio_vs(budgets["rfv"]) > 81
    assert budgets["regmutex-paired"].total_bits == 24
    assert budgets["regmutex-paired"].ratio_vs(budgets["regmutex"]) >= 16
