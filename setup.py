"""Legacy setup shim: the offline environment lacks the ``wheel``
package, so editable installs go through ``setup.py develop``.

Also builds the optional ``repro._native`` extension (the C backend
for ``issue_engine="native"``).  The extension is strictly optional:
on a machine without a C compiler the build warns and continues, and
``repro.sim.sm`` falls back to the pure-Python columnar stepper with
identical behaviour.  Build in place for the PYTHONPATH=src layout:

    python setup.py build_ext --inplace
"""

import warnings

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the native extension if we can; warn and continue if not.

    Any toolchain failure (no compiler, CC=/bin/false, broken headers)
    downgrades to a warning so `pip install -e .` / `setup.py` never
    hard-fails on the optional speedup.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any toolchain failure
            warnings.warn(
                "repro._native extension build failed "
                f"({type(exc).__name__}: {exc}); the pure-Python "
                "columnar engine will be used instead",
                RuntimeWarning,
                stacklevel=2,
            )

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            warnings.warn(
                f"building {ext.name} failed "
                f"({type(exc).__name__}: {exc}); the pure-Python "
                "columnar engine will be used instead",
                RuntimeWarning,
                stacklevel=2,
            )


setup(
    ext_modules=[
        Extension(
            "repro._native",
            sources=["src/repro/sim/csrc/nativemodule.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
