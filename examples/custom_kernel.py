"""Scenario: bring your own kernel.

Writes a kernel in the textual assembly format, parses it, lets the
RegMutex compiler pick |Es| with its own heuristic (no forcing), and
inspects the instrumented output — the workflow a compiler engineer
would use to see what RegMutex does to their code.

Run::

    python examples/custom_kernel.py
"""

from __future__ import annotations

from repro import (
    GTX480,
    analyze_liveness,
    compilation_report,
    format_kernel,
    parse_kernel,
    regmutex_compile,
)

# A reduction-style kernel: a long low-pressure streaming loop and a
# short register-hungry tail. 26 architected registers, 256 threads/CTA.
KERNEL_TEXT = """
.kernel stream_reduce
.regs 26
.threads 256
.smem 0
    LDC R0
    LDC R1
    LDC R2
    LDC R3
loop:
    LD.GLOBAL R4 ; R1
    FADD R0 ; R0,R4
    IADD R1 ; R1,R2
    ISETP R3 ; R1,R2
    BRA ; R3 -> loop @trips=64
    # register-hungry epilogue: wide unrolled combine
""" + "\n".join(f"    LDC R{r}" for r in range(4, 26)) + """
""" + "\n".join(
    f"    FFMA R{4 + (i % 22)} ; R{4 + ((i + 1) % 22)},R{4 + ((i + 2) % 22)},R{4 + (i % 22)}"
    for i in range(30)
) + """
""" + "\n".join(f"    FADD R0 ; R0,R{r}" for r in range(4, 26)) + """
    ST.GLOBAL ; R1,R0
    EXIT
"""


def main() -> None:
    kernel = parse_kernel(KERNEL_TEXT)
    info = analyze_liveness(kernel)
    print(f"parsed {kernel.name}: {len(kernel)} instructions, "
          f"max {info.max_live()} live registers")

    compiled = regmutex_compile(kernel, GTX480)  # heuristic picks |Es|
    report = compilation_report(compiled)
    md = compiled.metadata

    if not report.instrumented:
        print("RegMutex left this kernel alone:", report.selection.reason)
        return

    print(f"heuristic picked |Es|={md.extended_set_size} "
          f"(|Bs|={md.base_set_size}); {report.selection.reason}")
    print(f"acquire regions (original pc space): "
          f"{[(r.start, r.end) for r in report.regions]}")

    listing = format_kernel(compiled)
    interesting = [
        line for line in listing.splitlines()
        if "REGMUTEX" in line or "compaction" in line
    ]
    print("\ninjected/compacted lines:")
    for line in interesting:
        print("   ", line.strip())


if __name__ == "__main__":
    main()
