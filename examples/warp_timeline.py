"""Scenario: visualize SRP section hold intervals per warp.

Runs one SM of the SAD workload (Table I's most section-starved app)
under RegMutex with the cycle-trace recorder attached, then draws an
ASCII timeline of which warps held extended sets when — making the
time-multiplexing (and the contention the paper discusses for SAD)
directly visible.

Run::

    python examples/warp_timeline.py [app] [--sections N]
"""

from __future__ import annotations

import sys

from repro import GTX480, RegMutexTechnique, build_app_kernel, get_app
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.trace import TracingTechniqueState


def main(app_name: str, sections_override: int | None) -> None:
    spec = get_app(app_name)
    kernel = build_app_kernel(spec)
    technique = RegMutexTechnique(extended_set_size=spec.expected_es)
    compiled = technique.prepare_kernel(kernel, GTX480)
    occ = technique.occupancy(compiled, GTX480)
    sections = (
        sections_override
        if sections_override is not None
        else technique.num_sections(compiled, GTX480)
    )

    stats = SmStats()
    from repro.regmutex.issue_logic import RegMutexSmState
    inner = RegMutexSmState(compiled, GTX480, stats, num_sections=sections)
    traced = TracingTechniqueState(inner)
    sm = StreamingMultiprocessor(
        sm_id=0, config=GTX480, kernel=compiled, technique_state=traced,
        ctas_resident_limit=occ.ctas_per_sm, total_ctas=occ.ctas_per_sm,
        rng=DeterministicRng(7), stats=stats,
    )
    sm.run()
    trace = traced.trace

    warp_ids = sorted({e.warp_id for e in trace.events})
    total = stats.cycles
    width = 88
    print(f"{app_name}: {occ.resident_warps} warps, {sections} SRP sections, "
          f"{total} cycles, acquire success "
          f"{stats.acquire_success_rate:.0%}\n")
    print("one row per warp; '#' marks cycles holding an extended set:\n")
    shown = warp_ids[: min(len(warp_ids), 24)]
    for wid in shown:
        row = [" "] * width
        for start, end in trace.hold_intervals(wid):
            a = min(width - 1, start * width // max(1, total))
            b = min(width - 1, end * width // max(1, total))
            for i in range(a, b + 1):
                row[i] = "#"
        print(f"w{wid:02d} |{''.join(row)}|")
    if len(warp_ids) > len(shown):
        print(f"... ({len(warp_ids) - len(shown)} more warps)")
    held = sum(
        e - s for w in warp_ids for s, e in trace.hold_intervals(w)
    )
    capacity = total * sections
    print(f"\nSRP utilization: {held / capacity:.0%} of section-cycles "
          f"({held} held / {capacity} available)")


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    sections = None
    for i, a in enumerate(sys.argv):
        if a == "--sections" and i + 1 < len(sys.argv):
            sections = int(sys.argv[i + 1])
    main(args[0] if args else "SAD", sections)
