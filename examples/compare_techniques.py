"""Scenario: compare all five register-management schemes on one app.

Runs the stock GPU, RegMutex (default and paired-warps), OWF, and RFV
on the same workload and prints the Figure 9-style comparison plus the
hardware storage cost each scheme pays — the paper's cost/benefit
argument in one table.

Run::

    python examples/compare_techniques.py [app] [--half-rf]
"""

from __future__ import annotations

import sys

from repro import (
    GTX480,
    BaselineTechnique,
    OwfTechnique,
    PairedWarpsTechnique,
    RegMutexTechnique,
    RfvTechnique,
    build_app_kernel,
    get_app,
    owf_priority,
    paired_storage_bits,
    regmutex_storage_bits,
    rfv_storage_bits,
)
from repro.harness.reporting import format_table, percent
from repro.harness.runner import ExperimentRunner
from repro.regmutex.storage import owf_storage_bits


def main(app_name: str, half_rf: bool) -> None:
    spec = get_app(app_name)
    kernel = build_app_kernel(spec)
    config = GTX480.with_half_register_file() if half_rf else GTX480
    runner = ExperimentRunner(cache_path='.bench_cache.json')

    storage = {
        "baseline": 0,
        "regmutex": regmutex_storage_bits(config).total_bits,
        "regmutex-paired": paired_storage_bits(config).total_bits,
        "owf": owf_storage_bits(config).total_bits,
        "rfv": rfv_storage_bits(config).total_bits,
    }
    plans = [
        ("baseline", BaselineTechnique(), None),
        ("regmutex", RegMutexTechnique(extended_set_size=spec.expected_es), None),
        ("regmutex-paired",
         PairedWarpsTechnique(extended_set_size=spec.expected_es), None),
        ("owf", OwfTechnique(), owf_priority),
        ("rfv", RfvTechnique(), None),
    ]

    base = runner.run(kernel, config, BaselineTechnique())
    rows = []
    for name, technique, priority in plans:
        record = runner.run(kernel, config, technique,
                            scheduler_priority=priority)
        rows.append([
            name,
            f"{record.cycles_per_cta:.0f}",
            percent(record.reduction_vs(base)),
            f"{record.theoretical_occupancy:.0%}",
            f"{record.acquire_success_rate:.0%}",
            storage[name],
        ])

    print(format_table(
        ["technique", "cycles/CTA", "vs baseline", "occupancy",
         "acquire success", "added storage (bits/SM)"],
        rows,
        title=f"{app_name} on {config.name}",
    ))
    print("\nThe paper's pitch in one line: RegMutex buys most of RFV's "
          "speedup at ~1% of its storage.")
    runner.flush()  # persist the shared cache once, at session end


if __name__ == "__main__":
    apps = [a for a in sys.argv[1:] if not a.startswith("--")]
    main(apps[0] if apps else "BFS", "--half-rf" in sys.argv)
