"""Scenario: explore how the |Bs|/|Es| split moves occupancy and the SRP.

Pure occupancy math — no simulation — so it runs instantly.  For a
chosen application (or custom register count), prints one row per
candidate |Es|: the base set, CTAs and warps resident, the SRP section
count, and which resource binds.  This is the §III-A2 worked example as
an interactive tool.

Run::

    python examples/occupancy_explorer.py [app] [--arch volta|kepler|half]
"""

from __future__ import annotations

import sys

from repro import (
    GTX480,
    KEPLER_LIKE,
    VOLTA_LIKE,
    build_app_kernel,
    get_app,
    theoretical_occupancy,
)
from repro.compiler.es_selection import candidate_es_sizes, select_extended_set_size
from repro.harness.reporting import format_table
from repro.regmutex.issue_logic import srp_section_count

ARCHS = {
    "fermi": GTX480,
    "half": GTX480.with_half_register_file(),
    "kepler": KEPLER_LIKE,
    "volta": VOLTA_LIKE,
}


def main(app_name: str, arch_name: str) -> None:
    config = ARCHS[arch_name]
    spec = get_app(app_name)
    kernel = build_app_kernel(spec)
    md = kernel.metadata
    rounded = spec.rounded_regs

    base = theoretical_occupancy(config, md)
    print(f"{app_name} on {config.name}: {spec.regs} regs/thread "
          f"(rounded {rounded}), {md.threads_per_cta} threads/CTA")
    print(f"baseline: {base.ctas_per_sm} CTAs = {base.resident_warps} warps "
          f"({base.occupancy:.0%}), limited by {base.limiting_resource}\n")

    rows = []
    for es in candidate_es_sizes(rounded):
        bs = rounded - es
        occ = theoretical_occupancy(
            config, md, regs_per_thread=bs, granularity=1
        )
        sections = srp_section_count(config, occ.resident_warps, bs, es)
        rows.append([
            es, bs, occ.ctas_per_sm, occ.resident_warps,
            f"{occ.occupancy:.0%}", sections, occ.limiting_resource,
        ])
    print(format_table(
        ["|Es|", "|Bs|", "CTAs/SM", "warps", "occupancy", "SRP sections",
         "limited by"],
        rows,
        title="candidate splits",
    ))

    sel = select_extended_set_size(kernel, config)
    if sel.uses_regmutex:
        print(f"\nheuristic pick: |Es|={sel.extended_set_size} — {sel.reason}")
    else:
        print(f"\nheuristic declines: {sel.reason}")
    print(f"Table I split for this app: |Es|={spec.expected_es} "
          f"(|Bs|={spec.expected_bs})")


if __name__ == "__main__":
    apps = [a for a in sys.argv[1:] if not a.startswith("--")]
    arch = "fermi"
    for i, a in enumerate(sys.argv):
        if a == "--arch" and i + 1 < len(sys.argv):
            arch = sys.argv[i + 1]
    main(apps[0] if apps else "BFS", arch)
