"""Launch-geometry search for the Table I workload suite.

The paper gives each application's per-thread register count and the
|Bs| its heuristic computed, but not the launch geometry (threads/CTA,
shared memory).  This script searches that geometry so our occupancy
pipeline reproduces Table I exactly:

* occupancy-limited apps must be register-limited on the full GTX480
  register file and the heuristic must pick |Es| = rounded(R) - |Bs|;
* register-relaxed apps must NOT be register-limited on the full file,
  but must be register-limited on the halved file, where the heuristic
  must pick the same |Es|.

Run it after changing the suite or the heuristic::

    python examples/tune_suite.py

It prints one row per application: the geometry already in the suite,
whether it reproduces Table I, and (if not) the first geometry found
that does.
"""

from __future__ import annotations

from repro.arch.config import GTX480, GTX480_HALF_RF
from repro.arch.occupancy import occupancy_limited_by_registers
from repro.compiler.es_selection import select_extended_set_size
from repro.workloads.suite import APPLICATIONS, AppSpec, build_app_kernel

import dataclasses

THREAD_CHOICES = (64, 96, 128, 160, 192, 224, 256, 288, 320, 384, 448, 512)
SMEM_CHOICES = (0, 2048, 4096, 6144, 8192, 10240, 12288, 16384)


def check(spec: AppSpec) -> tuple[bool, str]:
    """Does this spec reproduce Table I?  Returns (ok, detail)."""
    kernel = build_app_kernel(spec)
    md = kernel.metadata
    limited_full = occupancy_limited_by_registers(GTX480, md)
    limited_half = occupancy_limited_by_registers(GTX480_HALF_RF, md)
    if spec.group == "occupancy-limited":
        if not limited_full:
            return False, "not register-limited on full RF"
        sel = select_extended_set_size(kernel, GTX480)
    else:
        if limited_full:
            return False, "register-limited on full RF (should not be)"
        if not limited_half:
            return False, "not register-limited on half RF"
        sel = select_extended_set_size(kernel, GTX480_HALF_RF)
    if not spec.heuristic_matches:
        return True, (
            f"group constraints hold; |Bs| forced to {spec.expected_bs} "
            f"(heuristic would pick |Es|={sel.extended_set_size})"
        )
    if sel.extended_set_size != spec.expected_es:
        return False, (
            f"heuristic picked |Es|={sel.extended_set_size} "
            f"(|Bs|={sel.base_set_size}), want |Es|={spec.expected_es} "
            f"(|Bs|={spec.expected_bs}) [{sel.reason}]"
        )
    return True, f"|Bs|={sel.base_set_size} sections={sel.srp_sections}"


def search(spec: AppSpec) -> AppSpec | None:
    """First geometry that reproduces Table I, or None."""
    for threads in THREAD_CHOICES:
        for smem in SMEM_CHOICES:
            candidate = dataclasses.replace(
                spec, threads_per_cta=threads, shared_mem_per_cta=smem
            )
            ok, _ = check(candidate)
            if ok:
                return candidate
    return None


def main() -> None:
    print(f"{'app':<16} {'group':<18} {'thr':>4} {'smem':>6}  status")
    failures = 0
    for spec in APPLICATIONS.values():
        ok, detail = check(spec)
        line = (
            f"{spec.name:<16} {spec.group:<18} "
            f"{spec.threads_per_cta:>4} {spec.shared_mem_per_cta:>6}  "
        )
        if ok:
            print(line + f"OK  {detail}")
            continue
        failures += 1
        print(line + f"MISMATCH: {detail}")
        found = search(spec)
        if found is None:
            print(f"{'':<16} -> no geometry in the search grid reproduces Table I")
        else:
            print(
                f"{'':<16} -> use threads={found.threads_per_cta} "
                f"smem={found.shared_mem_per_cta}"
            )
    if failures:
        raise SystemExit(f"{failures} application(s) need geometry updates")
    print("\nAll 16 applications reproduce Table I.")


if __name__ == "__main__":
    main()
