"""Quickstart: compile a kernel for RegMutex and watch it beat the baseline.

Builds the BFS workload from the paper's Table I, shows what the
RegMutex compiler does to it (liveness -> |Es| selection -> acquire/
release injection -> index compaction), and runs both the stock GPU and
RegMutex on the simulated GTX480.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GTX480,
    BaselineTechnique,
    RegMutexTechnique,
    analyze_liveness,
    build_app_kernel,
    compilation_report,
    get_app,
    regmutex_compile,
)
from repro.harness.runner import ExperimentRunner


def main() -> None:
    spec = get_app("BFS")
    kernel = build_app_kernel(spec)
    print(f"kernel {kernel.name}: {len(kernel)} instructions, "
          f"{kernel.metadata.regs_per_thread} registers/thread, "
          f"{kernel.metadata.threads_per_cta} threads/CTA")

    # --- what the compiler sees -------------------------------------------------
    info = analyze_liveness(kernel)
    print(f"liveness: max {info.max_live()} registers live at once; "
          f"{len(info.live_at_barriers())} barrier point(s)")

    # --- compile for RegMutex ----------------------------------------------------
    compiled = regmutex_compile(kernel, GTX480, forced_es=spec.expected_es)
    report = compilation_report(compiled)
    md = compiled.metadata
    print(f"compiled: |Bs|={md.base_set_size} |Es|={md.extended_set_size} "
          f"({report.acquire_count} acquire / {report.release_count} release "
          f"primitives, +{report.overhead_instructions} instructions)")
    print(f"selection: {report.selection.reason}")
    print(f"SRP sections available: {report.selection.srp_sections}")

    # --- run both configurations ---------------------------------------------------
    runner = ExperimentRunner(cache_path='.bench_cache.json')
    base = runner.run(kernel, GTX480, BaselineTechnique())
    rm = runner.run(
        kernel, GTX480, RegMutexTechnique(extended_set_size=spec.expected_es)
    )
    print(f"\nbaseline:  {base.cycles_per_cta:9.1f} cycles/CTA  "
          f"occupancy {base.theoretical_occupancy:.0%}")
    print(f"regmutex:  {rm.cycles_per_cta:9.1f} cycles/CTA  "
          f"occupancy {rm.theoretical_occupancy:.0%}  "
          f"acquire success {rm.acquire_success_rate:.0%}")
    reduction = rm.reduction_vs(base)
    print(f"execution-cycle reduction: {reduction:+.1%}")
    runner.flush()  # persist the shared cache once, at session end
    if reduction <= 0:
        raise SystemExit("expected RegMutex to win on BFS — check the build")


if __name__ == "__main__":
    main()
