"""Scenario: shipping a GPU with half the register file.

The paper's second pitch (§IV-B): RegMutex lets programs keep most of
their performance on an architecture with a smaller (cheaper, cooler)
register file — "approximately the same performance with the lower
number of registers hence yielding higher performance per dollar".

This script takes the register-relaxed applications, halves the register
file, and compares the slowdown with and without RegMutex, reproducing
Figure 8's experiment on a few apps.

Run::

    python examples/shrink_register_file.py [app ...]
"""

from __future__ import annotations

import sys

from repro import (
    GTX480,
    BaselineTechnique,
    RegMutexTechnique,
    REGISTER_RELAXED_APPS,
    build_app_kernel,
    get_app,
)
from repro.harness.reporting import format_table, percent
from repro.harness.runner import ExperimentRunner


def main(apps: list[str]) -> None:
    half = GTX480.with_half_register_file()
    runner = ExperimentRunner(cache_path='.bench_cache.json')
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        full = runner.run(kernel, GTX480, BaselineTechnique())
        bare = runner.run(kernel, half, BaselineTechnique())
        rm = runner.run(
            kernel, half, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        rows.append([
            name,
            percent(bare.increase_vs(full)),
            percent(rm.increase_vs(full)),
            f"{bare.theoretical_occupancy:.0%}",
            f"{rm.theoretical_occupancy:.0%}",
        ])
    print(format_table(
        ["app", "slowdown (no technique)", "slowdown (RegMutex)",
         "occupancy bare", "occupancy RegMutex"],
        rows,
        title="Half register file (64 KB/SM) vs full-file baseline",
    ))
    print("\nRegMutex should absorb most of the slowdown from the smaller "
          "register file (paper: 23% -> 9% average increase).")
    runner.flush()  # persist the shared cache once, at session end


if __name__ == "__main__":
    chosen = sys.argv[1:] or list(REGISTER_RELAXED_APPS[:3])
    main(chosen)
