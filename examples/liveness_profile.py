"""Scenario: profile a kernel's register liveness (the paper's Figure 1).

Traces one thread of each requested application through its dynamic
execution path and prints the percentage of allocated registers that are
actually live, as an ASCII sparkline — the underutilization that
motivates RegMutex.

Run::

    python examples/liveness_profile.py [app ...]
"""

from __future__ import annotations

import sys

from repro import FIGURE1_APPS, build_app_kernel, dynamic_pressure_trace, get_app
from repro.harness.reporting import format_percent_series


def main(apps: list[str]) -> None:
    print("Live registers as a fraction of the allocation, one thread, "
          "over dynamic instructions:\n")
    for name in apps:
        spec = get_app(name)
        trace = dynamic_pressure_trace(build_app_kernel(spec))
        print(format_percent_series(name, trace.utilization))
        print(f"{'':<16}  {trace.instructions_executed} dynamic instructions, "
              f"mean utilization {trace.mean_utilization():.0%}, "
              f"at-peak only {trace.fraction_fully_utilized():.0%} of the time")
        print()
    print("Most of each bar sits well below 100%: statically reserved "
          "registers are idle for most of the execution — the gap "
          "RegMutex's time-sharing reclaims.")


if __name__ == "__main__":
    chosen = sys.argv[1:] or list(FIGURE1_APPS)
    main(chosen)
